//! DieHard heap configuration.

/// Configuration for a [`DieHardHeap`](crate::DieHardHeap).
///
/// The defaults mirror the paper's evaluation setup: heap multiplier
/// `M = 2` (§7.1), 32-slot initial miniheaps, and a 64 KiB largest size
/// class.
///
/// # Example
///
/// ```
/// use xt_diehard::DieHardConfig;
///
/// let config = DieHardConfig::with_seed(42).multiplier(4.0).track_history(true);
/// assert_eq!(config.seed, 42);
/// assert_eq!(config.multiplier, 4.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DieHardConfig {
    /// Heap multiplier `M`: each size class is kept at most `1/M` full.
    pub multiplier: f64,
    /// Seed for all of the heap's randomized decisions (placement, probing).
    pub seed: u64,
    /// Slots in the first miniheap of each class; growth doubles from there.
    pub initial_slots: usize,
    /// Largest supported request, as a power of two exponent.
    pub max_size_log2: u32,
    /// Record a full [`ObjectLog`](crate::ObjectLog) of every allocation and
    /// free. Required by cumulative-mode isolation; off by default because
    /// Fig. 7's overhead measurements do not include it.
    pub track_history: bool,
}

impl DieHardConfig {
    /// Paper-default configuration with the given random seed.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        DieHardConfig {
            multiplier: 2.0,
            seed,
            initial_slots: 32,
            max_size_log2: 16,
            track_history: false,
        }
    }

    /// Sets the heap multiplier `M`.
    ///
    /// # Panics
    ///
    /// Panics if `m < 1.0`; DieHard requires over-provisioning.
    #[must_use]
    pub fn multiplier(mut self, m: f64) -> Self {
        assert!(m >= 1.0, "heap multiplier must be at least 1");
        self.multiplier = m;
        self
    }

    /// Sets the initial miniheap size in slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    #[must_use]
    pub fn initial_slots(mut self, slots: usize) -> Self {
        assert!(slots > 0, "initial miniheap needs at least one slot");
        self.initial_slots = slots;
        self
    }

    /// Enables or disables full allocation-history tracking.
    #[must_use]
    pub fn track_history(mut self, on: bool) -> Self {
        self.track_history = on;
        self
    }

    /// Largest request size in bytes.
    #[must_use]
    pub fn max_request(&self) -> usize {
        1usize << self.max_size_log2
    }
}

impl Default for DieHardConfig {
    fn default() -> Self {
        DieHardConfig::with_seed(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DieHardConfig::default();
        assert_eq!(c.multiplier, 2.0);
        assert_eq!(c.initial_slots, 32);
        assert_eq!(c.max_request(), 65536);
        assert!(!c.track_history);
    }

    #[test]
    fn builder_chains() {
        let c = DieHardConfig::with_seed(9)
            .multiplier(3.0)
            .initial_slots(8)
            .track_history(true);
        assert_eq!(c.seed, 9);
        assert_eq!(c.multiplier, 3.0);
        assert_eq!(c.initial_slots, 8);
        assert!(c.track_history);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_under_provisioning() {
        let _ = DieHardConfig::default().multiplier(0.5);
    }
}
