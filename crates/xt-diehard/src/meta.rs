//! Out-of-band per-slot metadata (paper Fig. 1).
//!
//! Exterminator records five fields per object beyond DieHard's allocation
//! bit: the object id, allocation and deallocation sites, the deallocation
//! time, and whether the freed slot was filled with canaries. We add the
//! requested size (DieHard rounds to a power of two) and a tombstone for
//! *bad object isolation* (§3.3).

use xt_alloc::{AllocTime, ObjectId, SiteHash};

/// Life-cycle state of one slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum SlotState {
    /// Never allocated, or freed. If [`SlotMeta::ever_used`] is set the
    /// remaining metadata describes the most recent occupant.
    #[default]
    Free,
    /// Currently allocated.
    Live,
    /// Permanently retired by DieFast's bad-object isolation: a canary
    /// corruption was discovered here and the contents are preserved as
    /// evidence; the slot is never reused.
    Bad,
}

/// Metadata for one object slot, stored outside the heap data itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct SlotMeta {
    /// Current state.
    pub state: SlotState,
    /// Identity of the current (or most recent) occupant.
    pub object_id: ObjectId,
    /// Call site of the allocation.
    pub alloc_site: SiteHash,
    /// Call site of the deallocation (meaningful once freed).
    pub free_site: SiteHash,
    /// Clock at allocation.
    pub alloc_time: AllocTime,
    /// Clock at deallocation (meaningful once freed).
    pub free_time: AllocTime,
    /// Whether DieFast filled this freed slot with canary words. This is the
    /// per-object "canary bitset" bit of Fig. 1.
    pub canaried: bool,
    /// Bytes actually requested (≤ slot size).
    pub requested: u32,
    /// Whether the slot has ever held an object.
    pub ever_used: bool,
}

impl SlotMeta {
    /// `true` if the slot currently holds a live object.
    #[must_use]
    pub fn is_live(&self) -> bool {
        self.state == SlotState::Live
    }

    /// `true` if the slot is free *and* previously held an object, i.e. its
    /// metadata (sites, times) describes a real former occupant.
    #[must_use]
    pub fn is_freed_object(&self) -> bool {
        self.state == SlotState::Free && self.ever_used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_untouched_free_slot() {
        let meta = SlotMeta::default();
        assert_eq!(meta.state, SlotState::Free);
        assert!(!meta.ever_used);
        assert!(!meta.is_live());
        assert!(!meta.is_freed_object());
    }

    #[test]
    fn state_predicates() {
        let mut meta = SlotMeta {
            state: SlotState::Live,
            ever_used: true,
            ..SlotMeta::default()
        };
        assert!(meta.is_live());
        assert!(!meta.is_freed_object());
        meta.state = SlotState::Free;
        assert!(meta.is_freed_object());
        meta.state = SlotState::Bad;
        assert!(!meta.is_live());
        assert!(!meta.is_freed_object());
    }
}
