//! Miniheaps: the per-size-class allocation chunks of adaptive DieHard.

use std::fmt;

use xt_alloc::AllocTime;
use xt_arena::Addr;

use crate::{BitMap, SlotMeta};

/// Identifies a miniheap: its size class and its ordinal within that class.
///
/// The cumulative-mode isolation formulas (§5.1) reason about "the corrupt
/// miniheap" and the set of miniheaps that existed when each object was
/// allocated; this id is how runs refer to them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MiniHeapId {
    /// Size-class index.
    pub class: u32,
    /// Ordinal within the class, in creation order.
    pub index: u32,
}

impl MiniHeapId {
    /// Creates an id from class and within-class ordinal.
    #[must_use]
    pub const fn new(class: u32, index: u32) -> Self {
        MiniHeapId { class, index }
    }
}

impl fmt::Display for MiniHeapId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mh{}.{}", self.class, self.index)
    }
}

/// One contiguous chunk of same-sized object slots, mapped at a random
/// address (paper Fig. 2).
#[derive(Debug)]
pub struct MiniHeap {
    id: MiniHeapId,
    base: Addr,
    object_size: usize,
    bitmap: BitMap,
    meta: Vec<SlotMeta>,
    created_at: AllocTime,
}

impl MiniHeap {
    /// Creates a miniheap whose region has already been mapped at `base`.
    #[must_use]
    pub fn new(
        id: MiniHeapId,
        base: Addr,
        object_size: usize,
        n_slots: usize,
        created_at: AllocTime,
    ) -> Self {
        MiniHeap {
            id,
            base,
            object_size,
            bitmap: BitMap::new(n_slots),
            meta: vec![SlotMeta::default(); n_slots],
            created_at,
        }
    }

    /// This miniheap's identity.
    #[must_use]
    pub fn id(&self) -> MiniHeapId {
        self.id
    }

    /// Base address of slot 0.
    #[must_use]
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Size of every object slot, in bytes.
    #[must_use]
    pub fn object_size(&self) -> usize {
        self.object_size
    }

    /// Number of slots.
    #[must_use]
    pub fn n_slots(&self) -> usize {
        self.bitmap.len()
    }

    /// Allocation time at which this miniheap was created — `τ(M_j)` in the
    /// cumulative-isolation formula (§5.1).
    #[must_use]
    pub fn created_at(&self) -> AllocTime {
        self.created_at
    }

    /// Number of slots whose allocation bit is set (live + bad).
    #[must_use]
    pub fn used_slots(&self) -> usize {
        self.bitmap.count_ones()
    }

    /// Address of slot `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn slot_addr(&self, idx: usize) -> Addr {
        assert!(idx < self.n_slots(), "slot {idx} out of range");
        self.base + (idx * self.object_size) as u64
    }

    /// Maps an address to a slot index, requiring `addr` to be exactly a
    /// slot base — DieHard treats interior pointers as invalid frees.
    #[must_use]
    pub fn slot_of(&self, addr: Addr) -> Option<usize> {
        if addr < self.base {
            return None;
        }
        let off = addr - self.base;
        let idx = (off / self.object_size as u64) as usize;
        if idx >= self.n_slots() || !off.is_multiple_of(self.object_size as u64) {
            return None;
        }
        Some(idx)
    }

    /// Maps an address to the slot *containing* it (interior pointers ok).
    #[must_use]
    pub fn slot_containing(&self, addr: Addr) -> Option<usize> {
        if addr < self.base {
            return None;
        }
        let idx = ((addr - self.base) / self.object_size as u64) as usize;
        (idx < self.n_slots()).then_some(idx)
    }

    /// End address (exclusive) of the slot area.
    #[must_use]
    pub fn end(&self) -> Addr {
        self.base + (self.n_slots() * self.object_size) as u64
    }

    /// The allocation bitmap.
    #[must_use]
    pub fn bitmap(&self) -> &BitMap {
        &self.bitmap
    }

    /// Mutable access to the allocation bitmap (used by the heap).
    pub(crate) fn bitmap_mut(&mut self) -> &mut BitMap {
        &mut self.bitmap
    }

    /// Metadata of slot `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn meta(&self, idx: usize) -> &SlotMeta {
        &self.meta[idx]
    }

    /// Mutable metadata of slot `idx` (used by the heap and DieFast).
    pub(crate) fn meta_mut(&mut self, idx: usize) -> &mut SlotMeta {
        &mut self.meta[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mh() -> MiniHeap {
        MiniHeap::new(
            MiniHeapId::new(1, 0),
            Addr::new(0x10_000),
            32,
            8,
            AllocTime::from_raw(5),
        )
    }

    #[test]
    fn geometry() {
        let m = mh();
        assert_eq!(m.object_size(), 32);
        assert_eq!(m.n_slots(), 8);
        assert_eq!(m.slot_addr(0), Addr::new(0x10_000));
        assert_eq!(m.slot_addr(3), Addr::new(0x10_000 + 96));
        assert_eq!(m.end(), Addr::new(0x10_000 + 256));
        assert_eq!(m.created_at(), AllocTime::from_raw(5));
        assert_eq!(m.id().to_string(), "mh1.0");
    }

    #[test]
    fn slot_of_requires_exact_base() {
        let m = mh();
        assert_eq!(m.slot_of(Addr::new(0x10_000)), Some(0));
        assert_eq!(m.slot_of(Addr::new(0x10_000 + 32)), Some(1));
        assert_eq!(m.slot_of(Addr::new(0x10_000 + 33)), None, "interior");
        assert_eq!(m.slot_of(Addr::new(0x10_000 + 256)), None, "past end");
        assert_eq!(m.slot_of(Addr::new(0xf_fff)), None, "below base");
    }

    #[test]
    fn slot_containing_accepts_interior() {
        let m = mh();
        assert_eq!(m.slot_containing(Addr::new(0x10_000 + 33)), Some(1));
        assert_eq!(m.slot_containing(Addr::new(0x10_000 + 255)), Some(7));
        assert_eq!(m.slot_containing(Addr::new(0x10_000 + 256)), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_addr_out_of_range_panics() {
        let _ = mh().slot_addr(8);
    }
}
