//! Full allocation history, the raw material of cumulative-mode isolation.
//!
//! In cumulative mode (paper §5) Exterminator cannot rely on object ids
//! matching across runs, so it reasons per allocation *site* over every
//! object a run ever created. The `ObjectLog` records exactly the facts the
//! §5.1 formulas consume: for each object, its allocation site and time, and
//! which miniheap/slot the randomized placement chose; for each free, the
//! time, site, and whether DieFast canaried the slot.

use std::collections::HashMap;

use xt_alloc::{AllocTime, ObjectId, SiteHash};

use crate::MiniHeapId;

/// The deallocation half of an object's history.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FreeRecord {
    /// Call site of the free.
    pub free_site: SiteHash,
    /// Clock at the free.
    pub free_time: AllocTime,
    /// Whether DieFast filled the slot with canaries afterwards.
    pub canaried: bool,
}

/// One object's complete allocation history.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObjectRecord {
    /// Identity (allocation ordinal).
    pub id: ObjectId,
    /// Allocation call site.
    pub alloc_site: SiteHash,
    /// Clock at allocation.
    pub alloc_time: AllocTime,
    /// Size class.
    pub size_class: u32,
    /// Bytes requested.
    pub requested: u32,
    /// Miniheap the object landed in.
    pub miniheap: MiniHeapId,
    /// Slot index within the miniheap.
    pub slot: u32,
    /// Deallocation record, if freed.
    pub free: Option<FreeRecord>,
}

/// Append-only log of every allocation and free in one run.
///
/// # Example
///
/// ```
/// use xt_alloc::{Heap, SiteHash};
/// use xt_diehard::{DieHardConfig, DieHardHeap};
///
/// # fn main() -> Result<(), xt_alloc::HeapError> {
/// let mut heap = DieHardHeap::new(DieHardConfig::with_seed(3).track_history(true));
/// let p = heap.malloc(24, SiteHash::from_raw(7))?;
/// heap.free(p, SiteHash::from_raw(8));
/// let log = heap.history().expect("history enabled");
/// let rec = log.records().next().unwrap();
/// assert_eq!(rec.alloc_site, SiteHash::from_raw(7));
/// assert_eq!(rec.free.unwrap().free_site, SiteHash::from_raw(8));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct ObjectLog {
    records: Vec<ObjectRecord>,
    by_id: HashMap<ObjectId, usize>,
}

/// Two logs are equal when they recorded the same history; the id index is
/// derived state.
impl PartialEq for ObjectLog {
    fn eq(&self, other: &Self) -> bool {
        self.records == other.records
    }
}

impl ObjectLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        ObjectLog::default()
    }

    /// Appends an allocation record.
    pub fn record_alloc(&mut self, record: ObjectRecord) {
        self.by_id.insert(record.id, self.records.len());
        self.records.push(record);
    }

    /// Marks the object as freed.
    pub fn record_free(&mut self, id: ObjectId, free: FreeRecord) {
        if let Some(&idx) = self.by_id.get(&id) {
            self.records[idx].free = Some(free);
        }
    }

    /// Marks the freed object's slot as canary-filled.
    pub fn record_canaried(&mut self, id: ObjectId) {
        if let Some(&idx) = self.by_id.get(&id) {
            if let Some(free) = self.records[idx].free.as_mut() {
                free.canaried = true;
            }
        }
    }

    /// Looks up one object's record.
    #[must_use]
    pub fn get(&self, id: ObjectId) -> Option<&ObjectRecord> {
        self.by_id.get(&id).map(|&idx| &self.records[idx])
    }

    /// Iterates over all records in allocation order.
    pub fn records(&self) -> impl Iterator<Item = &ObjectRecord> {
        self.records.iter()
    }

    /// Number of recorded allocations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over the records of objects allocated at `site`.
    pub fn records_from_site(&self, site: SiteHash) -> impl Iterator<Item = &ObjectRecord> {
        self.records.iter().filter(move |r| r.alloc_site == site)
    }

    /// The distinct allocation sites seen, in first-seen order. The
    /// cumulative classifier's prior is `1/(cN)` where `N` is this count.
    #[must_use]
    pub fn distinct_alloc_sites(&self) -> Vec<SiteHash> {
        let mut seen = std::collections::HashSet::new();
        let mut sites = Vec::new();
        for r in &self.records {
            if seen.insert(r.alloc_site) {
                sites.push(r.alloc_site);
            }
        }
        sites
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, site: u32) -> ObjectRecord {
        ObjectRecord {
            id: ObjectId::from_raw(id),
            alloc_site: SiteHash::from_raw(site),
            alloc_time: AllocTime::from_raw(id),
            size_class: 0,
            requested: 16,
            miniheap: MiniHeapId::new(0, 0),
            slot: 0,
            free: None,
        }
    }

    #[test]
    fn alloc_then_free_round_trip() {
        let mut log = ObjectLog::new();
        log.record_alloc(record(1, 100));
        log.record_free(
            ObjectId::from_raw(1),
            FreeRecord {
                free_site: SiteHash::from_raw(200),
                free_time: AllocTime::from_raw(5),
                canaried: false,
            },
        );
        log.record_canaried(ObjectId::from_raw(1));
        let rec = log.get(ObjectId::from_raw(1)).unwrap();
        let free = rec.free.unwrap();
        assert_eq!(free.free_site, SiteHash::from_raw(200));
        assert!(free.canaried);
    }

    #[test]
    fn unknown_ids_are_ignored() {
        let mut log = ObjectLog::new();
        log.record_free(
            ObjectId::from_raw(9),
            FreeRecord {
                free_site: SiteHash::UNKNOWN,
                free_time: AllocTime::ZERO,
                canaried: false,
            },
        );
        log.record_canaried(ObjectId::from_raw(9));
        assert!(log.is_empty());
    }

    #[test]
    fn site_queries() {
        let mut log = ObjectLog::new();
        log.record_alloc(record(1, 100));
        log.record_alloc(record(2, 200));
        log.record_alloc(record(3, 100));
        assert_eq!(log.len(), 3);
        assert_eq!(log.records_from_site(SiteHash::from_raw(100)).count(), 2);
        assert_eq!(
            log.distinct_alloc_sites(),
            vec![SiteHash::from_raw(100), SiteHash::from_raw(200)]
        );
    }
}
