//! Simulated memory faults.

use std::error::Error;
use std::fmt;

use crate::Addr;

/// A failed access to the simulated address space.
///
/// This is the reproduction's stand-in for a hardware trap: where the paper's
/// runtime installs a SIGSEGV handler and dumps a heap image, our runtime
/// observes a `MemFault` bubbling out of a workload and does the same.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemFault {
    /// The access touched an address with no mapped page ("segfault").
    Unmapped {
        /// First faulting address.
        addr: Addr,
    },
    /// The access started inside a mapping but ran past its end.
    OutOfBounds {
        /// Start of the access.
        addr: Addr,
        /// Length of the attempted access in bytes.
        len: usize,
    },
    /// A mapping request could not be satisfied.
    ExhaustedAddressSpace {
        /// The requested mapping length.
        len: usize,
    },
}

impl MemFault {
    /// The address at which the fault occurred, when one is meaningful.
    #[must_use]
    pub fn faulting_addr(&self) -> Option<Addr> {
        match self {
            MemFault::Unmapped { addr } | MemFault::OutOfBounds { addr, .. } => Some(*addr),
            MemFault::ExhaustedAddressSpace { .. } => None,
        }
    }
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemFault::Unmapped { addr } => {
                write!(f, "simulated segfault: unmapped address {addr}")
            }
            MemFault::OutOfBounds { addr, len } => {
                write!(f, "access of {len} bytes at {addr} leaves its mapping")
            }
            MemFault::ExhaustedAddressSpace { len } => {
                write!(f, "could not place a mapping of {len} bytes")
            }
        }
    }
}

impl Error for MemFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_address() {
        let fault = MemFault::Unmapped {
            addr: Addr::new(0xdead),
        };
        assert!(fault.to_string().contains("0xdead"));
        assert_eq!(fault.faulting_addr(), Some(Addr::new(0xdead)));
    }

    #[test]
    fn exhausted_has_no_address() {
        let fault = MemFault::ExhaustedAddressSpace { len: 4096 };
        assert_eq!(fault.faulting_addr(), None);
        assert!(!fault.to_string().is_empty());
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error + Send + Sync + 'static>(_e: E) {}
        takes_error(MemFault::Unmapped { addr: Addr::NULL });
    }
}
