//! A small, deterministic pseudo-random number generator.
//!
//! Every randomized decision in the reproduction (miniheap placement, bitmap
//! probing, canary values, fault injection) flows through this generator so
//! that whole experiments are reproducible from a single seed, independent of
//! external crate versions. The algorithm is xoshiro256** seeded via
//! SplitMix64 — the standard construction recommended by its authors.

/// Deterministic xoshiro256** generator.
///
/// # Example
///
/// ```
/// use xt_arena::Rng;
///
/// let mut a = Rng::new(7);
/// let mut b = Rng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Creates a generator from a seed.
    ///
    /// Distinct seeds produce independent-looking streams; the all-zero
    /// internal state is unreachable because SplitMix64 never produces four
    /// consecutive zeros.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Rng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Derives an independent generator, e.g. one per replica.
    #[must_use]
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Returns the next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the distribution is
    /// exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below requires a positive bound");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut low = m as u64;
        if low < bound {
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 random bits give a uniform double in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below_usize(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = Rng::new(123);
        let mut b = Rng::new(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Rng::new(99);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = Rng::new(5);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[rng.below_usize(8)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_panics() {
        Rng::new(0).below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::new(11);
        assert!(rng.chance(1.0));
        assert!(!rng.chance(0.0));
    }

    #[test]
    fn chance_half_is_balanced() {
        let mut rng = Rng::new(17);
        let heads = (0..10_000).filter(|_| rng.chance(0.5)).count();
        assert!((4500..5500).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = Rng::new(3);
        for _ in 0..1000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fork_produces_distinct_stream() {
        let mut a = Rng::new(42);
        let mut b = a.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(8);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
