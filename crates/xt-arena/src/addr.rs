//! Simulated heap addresses.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An address in the simulated address space.
///
/// `Addr` plays the role of a raw pointer in the reproduced system: the
/// allocators hand them out, applications store them (including *inside*
/// heap objects, which is what the error isolator's pointer-equivalence
/// analysis looks for), and the [`Arena`](crate::Arena) bounds-checks every
/// dereference.
///
/// # Example
///
/// ```
/// use xt_arena::Addr;
///
/// let base = Addr::new(0x1000);
/// let field = base + 8;
/// assert_eq!(field.get(), 0x1008);
/// assert_eq!(field - base, 8);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// The null address. Never mapped; dereferencing it always faults.
    pub const NULL: Addr = Addr(0);

    /// Creates an address from a raw offset.
    #[must_use]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw offset.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is the null address.
    #[must_use]
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Byte offset of this address from `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is above `self`.
    #[must_use]
    pub fn offset_from(self, base: Addr) -> u64 {
        self.0
            .checked_sub(base.0)
            .expect("offset_from: base above address")
    }

    /// Saturating addition, for speculative pointer arithmetic in tests.
    #[must_use]
    pub const fn saturating_add(self, rhs: u64) -> Addr {
        Addr(self.0.saturating_add(rhs))
    }
}

impl Add<u64> for Addr {
    type Output = Addr;

    fn add(self, rhs: u64) -> Addr {
        Addr(self.0.checked_add(rhs).expect("address overflow"))
    }
}

impl AddAssign<u64> for Addr {
    fn add_assign(&mut self, rhs: u64) {
        *self = *self + rhs;
    }
}

impl Sub<Addr> for Addr {
    type Output = u64;

    fn sub(self, rhs: Addr) -> u64 {
        self.0.checked_sub(rhs.0).expect("address underflow")
    }
}

impl Sub<u64> for Addr {
    type Output = Addr;

    fn sub(self, rhs: u64) -> Addr {
        Addr(self.0.checked_sub(rhs).expect("address underflow"))
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<Addr> for u64 {
    fn from(addr: Addr) -> u64 {
        addr.0
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Addr {
        Addr(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let a = Addr::new(0x4000);
        assert_eq!((a + 16) - a, 16);
        assert_eq!((a + 16) - 16, a);
        assert_eq!(a.offset_from(Addr::new(0x3000)), 0x1000);
    }

    #[test]
    fn null_is_null() {
        assert!(Addr::NULL.is_null());
        assert!(!Addr::new(1).is_null());
        assert_eq!(Addr::default(), Addr::NULL);
    }

    #[test]
    #[should_panic(expected = "address underflow")]
    fn subtraction_underflow_panics() {
        let _ = Addr::new(4) - Addr::new(8);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(Addr::new(1) < Addr::new(2));
        assert_eq!(Addr::new(7).get(), 7);
    }

    #[test]
    fn formatting_is_hex() {
        assert_eq!(format!("{}", Addr::new(0xff)), "0xff");
        assert_eq!(format!("{:?}", Addr::new(0xff)), "Addr(0xff)");
        assert_eq!(format!("{:x}", Addr::new(0xff)), "ff");
    }

    #[test]
    fn conversions() {
        let a: Addr = 0x123u64.into();
        let raw: u64 = a.into();
        assert_eq!(raw, 0x123);
    }
}
