//! The simulated sparse address space.

use std::cell::Cell;
use std::collections::BTreeMap;

use crate::{Addr, MemFault, Rng};

/// Granularity of mappings, mirroring the paper's 4 KiB platform pages.
pub const PAGE_SIZE: usize = 4096;

/// Lowest address at which regions are placed (keeps null pointers and small
/// offsets from them unmapped, so `NULL + k` dereferences fault).
const LOW_ADDR: u64 = 0x0000_1000_0000;

/// Exclusive upper bound of the simulated 47-bit address space.
const HIGH_ADDR: u64 = 0x7fff_ffff_0000;

/// Attempts at random placement before giving up.
const PLACEMENT_ATTEMPTS: usize = 4096;

#[derive(Debug)]
struct Region {
    data: Vec<u8>,
}

/// A sparse, bounds-checked simulated address space.
///
/// Regions (miniheaps, baseline heap segments) are mapped at random
/// page-aligned addresses with at least one unmapped guard page between any
/// two regions. Every access must fall entirely inside one region; anything
/// else returns a [`MemFault`], the reproduction's SIGSEGV.
///
/// # Example
///
/// ```
/// use xt_arena::{Arena, Rng};
///
/// # fn main() -> Result<(), xt_arena::MemFault> {
/// let mut arena = Arena::new();
/// let mut rng = Rng::new(1);
/// let r = arena.map(8192, &mut rng);
/// arena.write_bytes(r + 100, b"hello")?;
/// assert_eq!(arena.read_bytes(r + 100, 5)?, b"hello");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Arena {
    regions: BTreeMap<u64, Region>,
    /// One-entry translation cache `(base, end)` for the most recently
    /// accessed region — the simulation's TLB. Without it, every access
    /// pays a tree lookup whose depth grows with the region count, which
    /// would tax many-miniheap allocators for a cost real hardware does
    /// not charge.
    last_region: Cell<(u64, u64)>,
}

impl Arena {
    /// Creates an empty address space.
    #[must_use]
    pub fn new() -> Self {
        Arena::default()
    }

    /// Maps a zero-filled region of at least `len` bytes at a random
    /// page-aligned address and returns its base.
    ///
    /// The length is rounded up to a whole number of pages. Placement leaves
    /// a guard page on either side so overflows that escape a region fault
    /// instead of corrupting a neighbouring one — the same assumption the
    /// paper makes for overflows that cross miniheap boundaries (§5.1).
    ///
    /// # Panics
    ///
    /// Panics if no free slot can be found, which only happens if the
    /// simulated 47-bit space has been exhausted.
    pub fn map(&mut self, len: usize, rng: &mut Rng) -> Addr {
        self.try_map(len, rng)
            .expect("simulated address space exhausted")
    }

    /// Fallible variant of [`Arena::map`].
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::ExhaustedAddressSpace`] if no non-overlapping
    /// placement is found.
    pub fn try_map(&mut self, len: usize, rng: &mut Rng) -> Result<Addr, MemFault> {
        let len = round_up_pages(len);
        let span = len as u64;
        let slots = (HIGH_ADDR - LOW_ADDR - span) / PAGE_SIZE as u64;
        for _ in 0..PLACEMENT_ATTEMPTS {
            let base = LOW_ADDR + rng.below(slots) * PAGE_SIZE as u64;
            if self.is_range_free(base, span) {
                self.regions.insert(
                    base,
                    Region {
                        data: vec![0u8; len],
                    },
                );
                return Ok(Addr::new(base));
            }
        }
        Err(MemFault::ExhaustedAddressSpace { len })
    }

    /// Maps a zero-filled region at a caller-chosen page-aligned address.
    ///
    /// Used by the deterministic baseline allocator and by tests.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::ExhaustedAddressSpace`] if the range overlaps an
    /// existing region (including guard pages) or is not page-aligned.
    pub fn map_at(&mut self, base: Addr, len: usize) -> Result<(), MemFault> {
        let len = round_up_pages(len);
        if !base.get().is_multiple_of(PAGE_SIZE as u64)
            || base.get() < LOW_ADDR
            || base.get().saturating_add(len as u64) > HIGH_ADDR
            || !self.is_range_free(base.get(), len as u64)
        {
            return Err(MemFault::ExhaustedAddressSpace { len });
        }
        self.regions.insert(
            base.get(),
            Region {
                data: vec![0u8; len],
            },
        );
        Ok(())
    }

    /// Unmaps the region based at `base`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::Unmapped`] if `base` is not the base of a mapping.
    pub fn unmap(&mut self, base: Addr) -> Result<(), MemFault> {
        self.last_region.set((0, 0));
        self.regions
            .remove(&base.get())
            .map(|_| ())
            .ok_or(MemFault::Unmapped { addr: base })
    }

    fn is_range_free(&self, base: u64, span: u64) -> bool {
        // Expand by one guard page on each side.
        let lo = base.saturating_sub(PAGE_SIZE as u64);
        let hi = base + span + PAGE_SIZE as u64;
        // Any region starting before `hi` whose end is after `lo` overlaps.
        if let Some((&start, region)) = self.regions.range(..hi).next_back() {
            if start + region.data.len() as u64 > lo {
                return false;
            }
        }
        true
    }

    fn locate(&self, addr: Addr, len: usize) -> Result<(u64, usize), MemFault> {
        let raw = addr.get();
        let (cached_base, cached_end) = self.last_region.get();
        if raw >= cached_base && raw < cached_end {
            if raw + len as u64 > cached_end {
                return Err(MemFault::OutOfBounds { addr, len });
            }
            return Ok((cached_base, (raw - cached_base) as usize));
        }
        let (&start, region) = self
            .regions
            .range(..=raw)
            .next_back()
            .ok_or(MemFault::Unmapped { addr })?;
        let off = (raw - start) as usize;
        if off >= region.data.len() {
            return Err(MemFault::Unmapped { addr });
        }
        self.last_region.set((start, start + region.data.len() as u64));
        if off + len > region.data.len() {
            return Err(MemFault::OutOfBounds { addr, len });
        }
        Ok((start, off))
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Faults if the range is not entirely inside one mapped region.
    pub fn read_bytes(&self, addr: Addr, len: usize) -> Result<&[u8], MemFault> {
        let (start, off) = self.locate(addr, len)?;
        Ok(&self.regions[&start].data[off..off + len])
    }

    /// Writes `bytes` starting at `addr`. All-or-nothing: a faulting write
    /// modifies no memory.
    ///
    /// # Errors
    ///
    /// Faults if the range is not entirely inside one mapped region.
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) -> Result<(), MemFault> {
        let (start, off) = self.locate(addr, bytes.len())?;
        let region = self.regions.get_mut(&start).expect("located region");
        region.data[off..off + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Faults if `addr` is unmapped.
    pub fn read_u8(&self, addr: Addr) -> Result<u8, MemFault> {
        Ok(self.read_bytes(addr, 1)?[0])
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Faults if `addr` is unmapped.
    pub fn write_u8(&mut self, addr: Addr, value: u8) -> Result<(), MemFault> {
        self.write_bytes(addr, &[value])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Faults if the 4-byte range is not mapped.
    pub fn read_u32(&self, addr: Addr) -> Result<u32, MemFault> {
        let b = self.read_bytes(addr, 4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Writes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Faults if the 4-byte range is not mapped.
    pub fn write_u32(&mut self, addr: Addr, value: u32) -> Result<(), MemFault> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Faults if the 8-byte range is not mapped.
    pub fn read_u64(&self, addr: Addr) -> Result<u64, MemFault> {
        let b = self.read_bytes(addr, 8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Writes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Faults if the 8-byte range is not mapped.
    pub fn write_u64(&mut self, addr: Addr, value: u64) -> Result<(), MemFault> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Reads an [`Addr`]-sized pointer value.
    ///
    /// # Errors
    ///
    /// Faults if the 8-byte range is not mapped.
    pub fn read_addr(&self, addr: Addr) -> Result<Addr, MemFault> {
        Ok(Addr::new(self.read_u64(addr)?))
    }

    /// Stores an [`Addr`]-sized pointer value.
    ///
    /// # Errors
    ///
    /// Faults if the 8-byte range is not mapped.
    pub fn write_addr(&mut self, addr: Addr, value: Addr) -> Result<(), MemFault> {
        self.write_u64(addr, value.get())
    }

    /// Fills `len` bytes starting at `addr` with `value`.
    ///
    /// # Errors
    ///
    /// Faults if the range is not entirely inside one mapped region.
    pub fn fill(&mut self, addr: Addr, len: usize, value: u8) -> Result<(), MemFault> {
        let (start, off) = self.locate(addr, len)?;
        let region = self.regions.get_mut(&start).expect("located region");
        region.data[off..off + len].fill(value);
        Ok(())
    }

    /// Fills `len` bytes with a repeating little-endian `u32` pattern,
    /// truncating the final word if `len` is not a multiple of four. This is
    /// how DieFast writes canaries into freed objects.
    ///
    /// # Errors
    ///
    /// Faults if the range is not entirely inside one mapped region.
    pub fn fill_pattern_u32(
        &mut self,
        addr: Addr,
        len: usize,
        pattern: u32,
    ) -> Result<(), MemFault> {
        let (start, off) = self.locate(addr, len)?;
        let region = self.regions.get_mut(&start).expect("located region");
        let bytes = pattern.to_le_bytes();
        for (i, slot) in region.data[off..off + len].iter_mut().enumerate() {
            *slot = bytes[i % 4];
        }
        Ok(())
    }

    /// Returns the base and length of the region containing `addr`.
    #[must_use]
    pub fn region_of(&self, addr: Addr) -> Option<(Addr, usize)> {
        let raw = addr.get();
        let (&start, region) = self.regions.range(..=raw).next_back()?;
        if raw - start < region.data.len() as u64 {
            Some((Addr::new(start), region.data.len()))
        } else {
            None
        }
    }

    /// Returns `true` if every byte of `[addr, addr + len)` is mapped.
    #[must_use]
    pub fn is_mapped(&self, addr: Addr, len: usize) -> bool {
        self.locate(addr, len.max(1)).is_ok()
    }

    /// Iterates over `(base, len)` for every mapped region, in address order.
    pub fn regions(&self) -> impl Iterator<Item = (Addr, usize)> + '_ {
        self.regions
            .iter()
            .map(|(&start, region)| (Addr::new(start), region.data.len()))
    }

    /// Total mapped bytes.
    #[must_use]
    pub fn mapped_bytes(&self) -> usize {
        self.regions.values().map(|r| r.data.len()).sum()
    }
}

fn round_up_pages(len: usize) -> usize {
    let len = len.max(1);
    len.div_ceil(PAGE_SIZE) * PAGE_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena_with_region(len: usize) -> (Arena, Addr) {
        let mut arena = Arena::new();
        let mut rng = Rng::new(1234);
        let base = arena.map(len, &mut rng);
        (arena, base)
    }

    #[test]
    fn map_rounds_to_pages_and_zero_fills() {
        let (arena, base) = arena_with_region(100);
        assert_eq!(arena.region_of(base), Some((base, PAGE_SIZE)));
        assert_eq!(arena.read_bytes(base, PAGE_SIZE).unwrap(), &[0u8; 4096][..]);
    }

    #[test]
    fn read_write_round_trip() {
        let (mut arena, base) = arena_with_region(4096);
        arena.write_u64(base + 8, 0x0123_4567_89ab_cdef).unwrap();
        assert_eq!(arena.read_u64(base + 8).unwrap(), 0x0123_4567_89ab_cdef);
        arena.write_u32(base + 16, 0xdead_beef).unwrap();
        assert_eq!(arena.read_u32(base + 16).unwrap(), 0xdead_beef);
        arena.write_u8(base + 20, 7).unwrap();
        assert_eq!(arena.read_u8(base + 20).unwrap(), 7);
        arena.write_addr(base + 24, base).unwrap();
        assert_eq!(arena.read_addr(base + 24).unwrap(), base);
    }

    #[test]
    fn unmapped_access_faults() {
        let arena = Arena::new();
        let err = arena.read_u8(Addr::new(0x5000_0000)).unwrap_err();
        assert!(matches!(err, MemFault::Unmapped { .. }));
    }

    #[test]
    fn null_dereference_faults() {
        let arena = Arena::new();
        assert!(arena.read_u8(Addr::NULL).is_err());
        assert!(arena.read_u8(Addr::NULL + 16).is_err());
    }

    #[test]
    fn access_past_region_end_faults() {
        let (arena, base) = arena_with_region(4096);
        let err = arena.read_bytes(base + 4090, 16).unwrap_err();
        assert!(matches!(err, MemFault::OutOfBounds { .. }));
        assert!(arena.read_u8(base + 4096).is_err());
    }

    #[test]
    fn faulting_write_is_all_or_nothing() {
        let (mut arena, base) = arena_with_region(4096);
        arena.fill(base, 4096, 0xaa).unwrap();
        let err = arena.write_bytes(base + 4092, &[1, 2, 3, 4, 5, 6]).unwrap_err();
        assert!(matches!(err, MemFault::OutOfBounds { .. }));
        // Nothing was modified.
        assert_eq!(arena.read_bytes(base + 4092, 4).unwrap(), &[0xaa; 4]);
    }

    #[test]
    fn regions_have_guard_gaps() {
        let mut arena = Arena::new();
        let mut rng = Rng::new(7);
        let bases: Vec<Addr> = (0..64).map(|_| arena.map(PAGE_SIZE, &mut rng)).collect();
        for (i, &a) in bases.iter().enumerate() {
            for &b in &bases[i + 1..] {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                assert!(
                    hi - lo >= 2 * PAGE_SIZE as u64,
                    "regions at {lo} and {hi} lack a guard gap"
                );
            }
        }
    }

    #[test]
    fn unmap_then_access_faults() {
        let (mut arena, base) = arena_with_region(4096);
        arena.unmap(base).unwrap();
        assert!(arena.read_u8(base).is_err());
        assert!(matches!(
            arena.unmap(base),
            Err(MemFault::Unmapped { .. })
        ));
    }

    #[test]
    fn map_at_rejects_overlap() {
        let mut arena = Arena::new();
        arena.map_at(Addr::new(0x1000_0000), 4096).unwrap();
        // Same page.
        assert!(arena.map_at(Addr::new(0x1000_0000), 4096).is_err());
        // Guard page adjacency is also rejected.
        assert!(arena.map_at(Addr::new(0x1000_1000), 4096).is_err());
        // Two pages away is fine.
        arena.map_at(Addr::new(0x1000_2000), 4096).unwrap();
    }

    #[test]
    fn map_at_rejects_unaligned() {
        let mut arena = Arena::new();
        assert!(arena.map_at(Addr::new(0x1000_0010), 4096).is_err());
    }

    #[test]
    fn fill_pattern_repeats_and_truncates() {
        let (mut arena, base) = arena_with_region(4096);
        arena.fill_pattern_u32(base, 10, 0x0403_0201).unwrap();
        assert_eq!(
            arena.read_bytes(base, 10).unwrap(),
            &[1, 2, 3, 4, 1, 2, 3, 4, 1, 2]
        );
    }

    #[test]
    fn region_iteration_and_accounting() {
        let mut arena = Arena::new();
        let mut rng = Rng::new(2);
        arena.map(PAGE_SIZE, &mut rng);
        arena.map(3 * PAGE_SIZE, &mut rng);
        assert_eq!(arena.mapped_bytes(), 4 * PAGE_SIZE);
        assert_eq!(arena.regions().count(), 2);
        let bases: Vec<u64> = arena.regions().map(|(a, _)| a.get()).collect();
        assert!(bases.windows(2).all(|w| w[0] < w[1]), "regions not sorted");
    }

    #[test]
    fn is_mapped_checks_whole_range() {
        let (arena, base) = arena_with_region(4096);
        assert!(arena.is_mapped(base, 4096));
        assert!(!arena.is_mapped(base, 4097));
        assert!(!arena.is_mapped(base + 4095, 2));
        assert!(arena.is_mapped(base + 4095, 1));
    }

    #[test]
    fn placement_is_randomized_across_seeds() {
        let mut a1 = Arena::new();
        let mut a2 = Arena::new();
        let b1 = a1.map(4096, &mut Rng::new(1));
        let b2 = a2.map(4096, &mut Rng::new(2));
        assert_ne!(b1, b2, "two seeds produced identical placement");
    }
}
