//! The simulated sparse address space.

use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

use crate::{Addr, MemFault, Rng};

/// Granularity of mappings, mirroring the paper's 4 KiB platform pages.
pub const PAGE_SIZE: usize = 4096;

/// log2 of [`PAGE_SIZE`].
const PAGE_SHIFT: u32 = 12;

/// Pages covered by one leaf table of the page-table directory (512 pages
/// = 2 MiB of address space). Leaves are 2 KiB each, so even a heap of
/// thousands of randomly placed miniheaps costs well under 0.1% extra
/// memory in translation structures.
const CHUNK_PAGES: usize = 512;

/// log2 of [`CHUNK_PAGES`].
const CHUNK_SHIFT: u32 = 9;

/// Entries in the direct-mapped translation lookaside buffer — sized like
/// a real second-level TLB (4 KiB of state) so the working set of a
/// many-miniheap heap stays resident with few conflict misses.
const TLB_ENTRIES: usize = 256;

/// Leaf-table marker for "this page is unmapped".
const NO_REGION: u32 = u32::MAX;

/// TLB tag marking an empty entry (no valid page number is this large in a
/// 47-bit space).
const INVALID_PAGE: u64 = u64::MAX;

/// Lowest address at which regions are placed (keeps null pointers and small
/// offsets from them unmapped, so `NULL + k` dereferences fault).
const LOW_ADDR: u64 = 0x0000_1000_0000;

/// Exclusive upper bound of the simulated 47-bit address space.
const HIGH_ADDR: u64 = 0x7fff_ffff_0000;

/// Attempts at random placement before giving up.
const PLACEMENT_ATTEMPTS: usize = 4096;

/// Retired leaf tables kept for reuse across `reset` cycles (2 KiB each,
/// so the pool tops out at 2 MiB — far more than any workload's working
/// set of simultaneously mapped chunks).
const SPARE_LEAF_CAP: usize = 1024;

/// `u64` words in one leaf's dirty bitmap (one bit per page).
const DIRTY_WORDS: usize = CHUNK_PAGES / 64;

/// Dirty-cache tag for "no page cached".
const NO_DIRTY_PAGE: u64 = u64::MAX;

#[derive(Debug)]
struct Region {
    base: u64,
    data: Vec<u8>,
}

/// One leaf of the page table: maps 512 consecutive pages to region ids.
struct Leaf {
    entries: Box<[u32; CHUNK_PAGES]>,
    /// Count of mapped entries, so empty leaves can be reclaimed.
    mapped: usize,
    /// One dirty bit per page, set on every store into the page and cleared
    /// by [`Arena::clear_dirty`] (capture) or implicitly when the leaf dies
    /// ([`Arena::reset`], [`Arena::unmap`] clearing the page's bit). `Cell`
    /// because capture observes the arena through `&self`. The bitmap lives
    /// with the `Leaf`, not in the spare-entries pool, so a recycled leaf
    /// always starts with a clean bitmap — spare-leaf reuse cannot leak
    /// another cycle's dirty bits.
    dirty: [Cell<u64>; DIRTY_WORDS],
}

impl Leaf {
    fn new() -> Self {
        Leaf::with_entries(Box::new([NO_REGION; CHUNK_PAGES]))
    }

    fn with_entries(entries: Box<[u32; CHUNK_PAGES]>) -> Self {
        Leaf {
            entries,
            mapped: 0,
            dirty: std::array::from_fn(|_| Cell::new(0)),
        }
    }

    #[inline]
    fn mark_dirty(&self, bit: usize) {
        let word = &self.dirty[bit >> 6];
        word.set(word.get() | 1 << (bit & 63));
    }

    #[inline]
    fn is_dirty(&self, bit: usize) -> bool {
        self.dirty[bit >> 6].get() & (1 << (bit & 63)) != 0
    }

    #[inline]
    fn clear_dirty_bit(&self, bit: usize) {
        let word = &self.dirty[bit >> 6];
        word.set(word.get() & !(1 << (bit & 63)));
    }
}

impl std::fmt::Debug for Leaf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Leaf")
            .field("mapped", &self.mapped)
            .finish()
    }
}

/// Fibonacci-multiplicative hasher for directory chunk numbers. The keys
/// are page numbers the arena itself generated, so the DoS resistance of
/// `HashMap`'s default SipHash would charge every TLB miss ~4× the cost
/// of the table walk it protects — a tax real page-table hardware does
/// not pay.
#[derive(Default)]
struct ChunkHasher(u64);

impl Hasher for ChunkHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("directory keys hash through write_u64");
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_right(17);
    }
}

type Directory = HashMap<u64, Leaf, BuildHasherDefault<ChunkHasher>>;

/// A sparse, bounds-checked simulated address space.
///
/// Regions (miniheaps, baseline heap segments) are mapped at random
/// page-aligned addresses with at least one unmapped guard page between any
/// two regions. Every access must fall entirely inside one region; anything
/// else returns a [`MemFault`], the reproduction's SIGSEGV.
///
/// Translation is a two-level page table (a directory of fixed 512-page
/// leaves keyed by chunk number, each leaf mapping page → region id)
/// fronted by a 256-entry direct-mapped TLB, so a load or store costs O(1)
/// regardless of how many regions are live. Unmapping invalidates only the
/// dead region's TLB entries; translations for other regions survive.
///
/// # Example
///
/// ```
/// use xt_arena::{Arena, Rng};
///
/// # fn main() -> Result<(), xt_arena::MemFault> {
/// let mut arena = Arena::new();
/// let mut rng = Rng::new(1);
/// let r = arena.map(8192, &mut rng);
/// arena.write_bytes(r + 100, b"hello")?;
/// assert_eq!(arena.read_bytes(r + 100, 5)?, b"hello");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Arena {
    /// Region storage, indexed by the ids the page table hands out. `None`
    /// slots are unmapped regions awaiting id reuse.
    slab: Vec<Option<Region>>,
    /// Reusable slab indices of unmapped regions.
    free_ids: Vec<u32>,
    /// Page-table directory: chunk number → leaf table.
    directory: Directory,
    /// Region bases in address order, for placement and iteration (the
    /// access fast path never touches this).
    by_base: BTreeMap<u64, u32>,
    /// Direct-mapped TLB: slot `page % 256` caches `(page, region id)`.
    tlb: [Cell<(u64, u32)>; TLB_ENTRIES],
    /// Total mapped bytes, maintained incrementally.
    total_mapped: usize,
    /// Retired leaf tables (all entries `NO_REGION`) kept for reuse, so a
    /// long-lived executor that resets the arena between inputs does not
    /// pay a 2 KiB allocation per leaf per input. The boxes are the point:
    /// they are the exact heap allocations `Leaf` uses, moved between this
    /// pool and the directory without copying the 2 KiB table.
    #[allow(clippy::vec_box)]
    spare_leaves: Vec<Box<[u32; CHUNK_PAGES]>>,
    /// Last page marked dirty, so a run of stores into one page (the
    /// overwhelmingly common pattern) pays the directory walk once.
    /// Invalidated whenever a page's dirty bit may have been cleared
    /// (`clear_dirty`, `unmap`, `reset`).
    last_dirty_page: Cell<u64>,
}

impl Default for Arena {
    fn default() -> Self {
        Arena::new()
    }
}

impl Arena {
    /// Creates an empty address space.
    #[must_use]
    pub fn new() -> Self {
        Arena {
            slab: Vec::new(),
            free_ids: Vec::new(),
            directory: Directory::default(),
            by_base: BTreeMap::new(),
            tlb: std::array::from_fn(|_| Cell::new((INVALID_PAGE, 0))),
            total_mapped: 0,
            spare_leaves: Vec::new(),
            last_dirty_page: Cell::new(NO_DIRTY_PAGE),
        }
    }

    /// Unmaps everything, returning the arena to its freshly-created state
    /// while *keeping* translation structures for reuse: leaf tables retire
    /// to a spare pool and the slab/free-list vectors keep their capacity.
    ///
    /// This is what makes a long-lived replica worker cheap: between
    /// inputs its address space is reset, not rebuilt, so the next input's
    /// mappings recycle the previous input's page-table allocations — the
    /// same way real hardware reuses page frames instead of re-fabricating
    /// them. A reset arena is observationally identical to `Arena::new()`:
    /// region ids restart at 0, every TLB entry is invalid, and no mapping
    /// survives (the reuse property tests pin this).
    pub fn reset(&mut self) {
        for (_, mut leaf) in self.directory.drain() {
            if self.spare_leaves.len() >= SPARE_LEAF_CAP {
                break;
            }
            leaf.entries.fill(NO_REGION);
            self.spare_leaves.push(leaf.entries);
        }
        self.directory.clear();
        self.slab.clear();
        self.free_ids.clear();
        self.by_base.clear();
        self.total_mapped = 0;
        for entry in &self.tlb {
            entry.set((INVALID_PAGE, 0));
        }
        // Dirty bitmaps died with their leaves (only the entries boxes are
        // pooled); a reset arena reports no dirty pages.
        self.last_dirty_page.set(NO_DIRTY_PAGE);
    }

    /// Maps a zero-filled region of at least `len` bytes at a random
    /// page-aligned address and returns its base.
    ///
    /// The length is rounded up to a whole number of pages. Placement leaves
    /// a guard page on either side so overflows that escape a region fault
    /// instead of corrupting a neighbouring one — the same assumption the
    /// paper makes for overflows that cross miniheap boundaries (§5.1).
    ///
    /// # Panics
    ///
    /// Panics if no free slot can be found, which only happens if the
    /// simulated 47-bit space has been exhausted.
    pub fn map(&mut self, len: usize, rng: &mut Rng) -> Addr {
        self.try_map(len, rng)
            .expect("simulated address space exhausted")
    }

    /// Fallible variant of [`Arena::map`].
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::ExhaustedAddressSpace`] if no non-overlapping
    /// placement is found.
    pub fn try_map(&mut self, len: usize, rng: &mut Rng) -> Result<Addr, MemFault> {
        let len = round_up_pages(len);
        let span = len as u64;
        let slots = (HIGH_ADDR - LOW_ADDR - span) / PAGE_SIZE as u64;
        for _ in 0..PLACEMENT_ATTEMPTS {
            let base = LOW_ADDR + rng.below(slots) * PAGE_SIZE as u64;
            if self.is_range_free(base, span) {
                self.insert_region(base, len);
                return Ok(Addr::new(base));
            }
        }
        Err(MemFault::ExhaustedAddressSpace { len })
    }

    /// Maps a zero-filled region at a caller-chosen page-aligned address.
    ///
    /// Used by the deterministic baseline allocator and by tests.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::ExhaustedAddressSpace`] if the range overlaps an
    /// existing region (including guard pages) or is not page-aligned.
    pub fn map_at(&mut self, base: Addr, len: usize) -> Result<(), MemFault> {
        let len = round_up_pages(len);
        if !base.get().is_multiple_of(PAGE_SIZE as u64)
            || base.get() < LOW_ADDR
            || base.get().saturating_add(len as u64) > HIGH_ADDR
            || !self.is_range_free(base.get(), len as u64)
        {
            return Err(MemFault::ExhaustedAddressSpace { len });
        }
        self.insert_region(base.get(), len);
        Ok(())
    }

    /// Unmaps the region based at `base`.
    ///
    /// Only this region's TLB entries are invalidated; cached translations
    /// for every other region stay hot.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault::Unmapped`] if `base` is not the base of a mapping.
    pub fn unmap(&mut self, base: Addr) -> Result<(), MemFault> {
        let Some(idx) = self.by_base.remove(&base.get()) else {
            return Err(MemFault::Unmapped { addr: base });
        };
        let region = self.slab[idx as usize]
            .take()
            .expect("page table referenced a live region");
        self.total_mapped -= region.data.len();
        let first_page = region.base >> PAGE_SHIFT;
        for page in first_page..first_page + (region.data.len() / PAGE_SIZE) as u64 {
            let chunk = page >> CHUNK_SHIFT;
            let leaf = self
                .directory
                .get_mut(&chunk)
                .expect("mapped page has a leaf table");
            leaf.entries[page as usize & (CHUNK_PAGES - 1)] = NO_REGION;
            leaf.clear_dirty_bit(page as usize & (CHUNK_PAGES - 1));
            leaf.mapped -= 1;
            if leaf.mapped == 0 {
                // Every entry is NO_REGION again: retire the leaf's table
                // to the spare pool instead of freeing it.
                if let Some(leaf) = self.directory.remove(&chunk) {
                    if self.spare_leaves.len() < SPARE_LEAF_CAP {
                        self.spare_leaves.push(leaf.entries);
                    }
                }
            }
        }
        // Precise shootdown: drop only translations that named this region.
        for entry in &self.tlb {
            if entry.get().1 == idx {
                entry.set((INVALID_PAGE, 0));
            }
        }
        // The dirty-page cache may name a page whose bit was just cleared.
        self.last_dirty_page.set(NO_DIRTY_PAGE);
        self.free_ids.push(idx);
        Ok(())
    }

    fn insert_region(&mut self, base: u64, len: usize) {
        let idx = match self.free_ids.pop() {
            Some(idx) => idx,
            None => {
                assert!(
                    self.slab.len() < NO_REGION as usize,
                    "region id space exhausted"
                );
                self.slab.push(None);
                (self.slab.len() - 1) as u32
            }
        };
        self.slab[idx as usize] = Some(Region {
            base,
            data: vec![0u8; len],
        });
        self.by_base.insert(base, idx);
        self.total_mapped += len;
        let first_page = base >> PAGE_SHIFT;
        for page in first_page..first_page + (len / PAGE_SIZE) as u64 {
            let spare = &mut self.spare_leaves;
            let leaf = self
                .directory
                .entry(page >> CHUNK_SHIFT)
                .or_insert_with(|| match spare.pop() {
                    Some(entries) => Leaf::with_entries(entries),
                    None => Leaf::new(),
                });
            debug_assert_eq!(
                leaf.entries[page as usize & (CHUNK_PAGES - 1)],
                NO_REGION,
                "double-mapped page"
            );
            leaf.entries[page as usize & (CHUNK_PAGES - 1)] = idx;
            leaf.mapped += 1;
            // Mapping zero-fills the page — that store dirties it. This also
            // closes the unmap-then-remap hole: a page reused at the same
            // address can never be spliced from a stale base image.
            leaf.mark_dirty(page as usize & (CHUNK_PAGES - 1));
        }
    }

    fn is_range_free(&self, base: u64, span: u64) -> bool {
        // Expand by one guard page on each side.
        let lo = base.saturating_sub(PAGE_SIZE as u64);
        let hi = base + span + PAGE_SIZE as u64;
        // Any region starting before `hi` whose end is after `lo` overlaps.
        if let Some((&start, &idx)) = self.by_base.range(..hi).next_back() {
            if start + self.region(idx).data.len() as u64 > lo {
                return false;
            }
        }
        true
    }

    #[inline]
    fn region(&self, idx: u32) -> &Region {
        self.slab[idx as usize]
            .as_ref()
            .expect("page table referenced a live region")
    }

    /// Walks the page table (no TLB) to the region id mapping `page`.
    #[inline]
    fn lookup_page(&self, page: u64) -> Option<u32> {
        let leaf = self.directory.get(&(page >> CHUNK_SHIFT))?;
        match leaf.entries[page as usize & (CHUNK_PAGES - 1)] {
            NO_REGION => None,
            idx => Some(idx),
        }
    }

    /// Translates `addr`'s page to its owning region id.
    ///
    /// Fast path: one TLB probe (array index + compare). Miss path: one
    /// hash lookup and one leaf index, then the TLB is refilled. Both are
    /// O(1) in the number of live regions.
    #[inline]
    fn translate(&self, addr: Addr) -> Result<u32, MemFault> {
        let page = addr.get() >> PAGE_SHIFT;
        let slot = page as usize & (TLB_ENTRIES - 1);
        let (tag, cached) = self.tlb[slot].get();
        if tag == page {
            return Ok(cached);
        }
        let idx = self.lookup_page(page).ok_or(MemFault::Unmapped { addr })?;
        self.tlb[slot].set((page, idx));
        Ok(idx)
    }

    /// Bounds-checks an access of `len` bytes inside `region`.
    ///
    /// Regions are page-aligned and whole pages, so a mapped page implies
    /// `addr` is inside the region: only the end can overrun.
    #[inline]
    fn bounds_check(region: &Region, addr: Addr, len: usize) -> Result<usize, MemFault> {
        let off = (addr.get() - region.base) as usize;
        if off as u64 + len as u64 > region.data.len() as u64 {
            return Err(MemFault::OutOfBounds { addr, len });
        }
        Ok(off)
    }

    /// Translates and bounds-checks a read access, returning the owning
    /// region and the byte offset within it.
    #[inline]
    fn locate_ref(&self, addr: Addr, len: usize) -> Result<(&Region, usize), MemFault> {
        let idx = self.translate(addr)?;
        let region = self.region(idx);
        let off = Self::bounds_check(region, addr, len)?;
        Ok((region, off))
    }

    /// Translates and bounds-checks a write access, returning the owning
    /// region mutably and the byte offset within it. This is the single
    /// funnel every store path goes through (`write_bytes` and hence
    /// `write_u8/u32/u64/addr`, `fill`, `fill_pattern_u32`), so marking
    /// dirty pages here covers them all — bulk paths included. Marking
    /// happens only after translation *and* bounds check succeed: a
    /// faulting store modifies nothing and therefore dirties nothing.
    #[inline]
    fn locate_mut(&mut self, addr: Addr, len: usize) -> Result<(&mut Region, usize), MemFault> {
        let idx = self.translate(addr)?;
        let off = Self::bounds_check(self.region(idx), addr, len)?;
        self.mark_dirty(addr, len);
        let region = self.slab[idx as usize]
            .as_mut()
            .expect("page table referenced a live region");
        Ok((region, off))
    }

    /// Sets the dirty bit of every page overlapping `[addr, addr + len)`.
    /// The caller has already proven the range mapped and in-bounds.
    #[inline]
    fn mark_dirty(&self, addr: Addr, len: usize) {
        if len == 0 {
            return;
        }
        let first = addr.get() >> PAGE_SHIFT;
        let last = (addr.get() + (len as u64 - 1)) >> PAGE_SHIFT;
        if first == last && first == self.last_dirty_page.get() {
            return;
        }
        for page in first..=last {
            let leaf = self
                .directory
                .get(&(page >> CHUNK_SHIFT))
                .expect("dirtied page has a leaf table");
            leaf.mark_dirty(page as usize & (CHUNK_PAGES - 1));
        }
        self.last_dirty_page.set(last);
    }

    /// Clears every dirty bit, making the current contents the baseline the
    /// next [`Arena::region_dirty_pages`] answers are relative to. Heap-image
    /// capture calls this after reading the heap, so dirty bits always mean
    /// "stored to since the last capture". Interior mutability (`&self`)
    /// because capture observes the heap immutably.
    pub fn clear_dirty(&self) {
        for leaf in self.directory.values() {
            for word in &leaf.dirty {
                word.set(0);
            }
        }
        self.last_dirty_page.set(NO_DIRTY_PAGE);
    }

    /// Per-page dirty flags for the region containing `addr`, as
    /// `(region base, one flag per page in address order)`, or `None` if
    /// `addr` is unmapped. A `true` flag means the page has been stored to
    /// (or freshly mapped) since the last [`Arena::clear_dirty`].
    #[must_use]
    pub fn region_dirty_pages(&self, addr: Addr) -> Option<(Addr, Vec<bool>)> {
        let idx = self.lookup_page(addr.get() >> PAGE_SHIFT)?;
        let region = self.region(idx);
        let first_page = region.base >> PAGE_SHIFT;
        let n_pages = region.data.len() / PAGE_SIZE;
        let flags = (first_page..first_page + n_pages as u64)
            .map(|page| {
                self.directory
                    .get(&(page >> CHUNK_SHIFT))
                    .expect("mapped page has a leaf table")
                    .is_dirty(page as usize & (CHUNK_PAGES - 1))
            })
            .collect();
        Some((Addr::new(region.base), flags))
    }

    /// Base addresses of every dirty page, in address order. Dirty bits are
    /// only ever set on mapped pages and cleared when their page unmaps, so
    /// every returned address is currently mapped. Intended for tests and
    /// diagnostics; capture uses [`Arena::region_dirty_pages`] per region.
    #[must_use]
    pub fn dirty_pages(&self) -> Vec<Addr> {
        let mut pages: Vec<Addr> = self
            .directory
            .iter()
            .flat_map(|(&chunk, leaf)| {
                (0..CHUNK_PAGES).filter_map(move |bit| {
                    if leaf.is_dirty(bit) {
                        debug_assert_ne!(
                            leaf.entries[bit], NO_REGION,
                            "dirty bit on unmapped page"
                        );
                        Some(Addr::new(
                            ((chunk << CHUNK_SHIFT) + bit as u64) << PAGE_SHIFT,
                        ))
                    } else {
                        None
                    }
                })
            })
            .collect();
        pages.sort_unstable();
        pages
    }

    /// Translates `addr` and bounds-checks an access of `len` bytes.
    #[inline]
    fn locate(&self, addr: Addr, len: usize) -> Result<(u32, usize), MemFault> {
        let idx = self.translate(addr)?;
        let off = Self::bounds_check(self.region(idx), addr, len)?;
        Ok((idx, off))
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Faults if the range is not entirely inside one mapped region.
    #[inline]
    pub fn read_bytes(&self, addr: Addr, len: usize) -> Result<&[u8], MemFault> {
        let (region, off) = self.locate_ref(addr, len)?;
        Ok(&region.data[off..off + len])
    }

    /// Writes `bytes` starting at `addr`. All-or-nothing: a faulting write
    /// modifies no memory.
    ///
    /// # Errors
    ///
    /// Faults if the range is not entirely inside one mapped region.
    #[inline]
    pub fn write_bytes(&mut self, addr: Addr, bytes: &[u8]) -> Result<(), MemFault> {
        let (region, off) = self.locate_mut(addr, bytes.len())?;
        region.data[off..off + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Faults if `addr` is unmapped.
    #[inline]
    pub fn read_u8(&self, addr: Addr) -> Result<u8, MemFault> {
        Ok(self.read_bytes(addr, 1)?[0])
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Faults if `addr` is unmapped.
    #[inline]
    pub fn write_u8(&mut self, addr: Addr, value: u8) -> Result<(), MemFault> {
        self.write_bytes(addr, &[value])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Faults if the 4-byte range is not mapped.
    #[inline]
    pub fn read_u32(&self, addr: Addr) -> Result<u32, MemFault> {
        let b = self.read_bytes(addr, 4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Writes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Faults if the 4-byte range is not mapped.
    #[inline]
    pub fn write_u32(&mut self, addr: Addr, value: u32) -> Result<(), MemFault> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Faults if the 8-byte range is not mapped.
    #[inline]
    pub fn read_u64(&self, addr: Addr) -> Result<u64, MemFault> {
        let b = self.read_bytes(addr, 8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Writes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Faults if the 8-byte range is not mapped.
    #[inline]
    pub fn write_u64(&mut self, addr: Addr, value: u64) -> Result<(), MemFault> {
        self.write_bytes(addr, &value.to_le_bytes())
    }

    /// Reads an [`Addr`]-sized pointer value.
    ///
    /// # Errors
    ///
    /// Faults if the 8-byte range is not mapped.
    #[inline]
    pub fn read_addr(&self, addr: Addr) -> Result<Addr, MemFault> {
        Ok(Addr::new(self.read_u64(addr)?))
    }

    /// Stores an [`Addr`]-sized pointer value.
    ///
    /// # Errors
    ///
    /// Faults if the 8-byte range is not mapped.
    #[inline]
    pub fn write_addr(&mut self, addr: Addr, value: Addr) -> Result<(), MemFault> {
        self.write_u64(addr, value.get())
    }

    /// Fills `len` bytes starting at `addr` with `value`.
    ///
    /// # Errors
    ///
    /// Faults if the range is not entirely inside one mapped region.
    #[inline]
    pub fn fill(&mut self, addr: Addr, len: usize, value: u8) -> Result<(), MemFault> {
        let (region, off) = self.locate_mut(addr, len)?;
        region.data[off..off + len].fill(value);
        Ok(())
    }

    /// Fills `len` bytes with a repeating little-endian `u32` pattern,
    /// truncating the final word if `len` is not a multiple of four. This is
    /// how DieFast writes canaries into freed objects.
    ///
    /// # Errors
    ///
    /// Faults if the range is not entirely inside one mapped region.
    pub fn fill_pattern_u32(
        &mut self,
        addr: Addr,
        len: usize,
        pattern: u32,
    ) -> Result<(), MemFault> {
        let (region, off) = self.locate_mut(addr, len)?;
        let pat = pattern.to_le_bytes();
        let dst = &mut region.data[off..off + len];
        let whole = len - len % 4;
        for chunk in dst[..whole].chunks_exact_mut(4) {
            chunk.copy_from_slice(&pat);
        }
        for (i, slot) in dst[whole..].iter_mut().enumerate() {
            *slot = pat[i];
        }
        Ok(())
    }

    /// Compares `len` bytes at `addr` against a repeating little-endian
    /// `u32` pattern (phase-aligned to `addr`, like
    /// [`Arena::fill_pattern_u32`]) and returns the offset of the first
    /// mismatching byte, or `None` if the whole range matches.
    ///
    /// This is DieFast's canary check as one bulk operation: word-at-a-time
    /// comparison instead of a bounds-checked simulated load per byte.
    ///
    /// # Errors
    ///
    /// Faults if the range is not entirely inside one mapped region.
    pub fn compare_pattern(
        &self,
        addr: Addr,
        len: usize,
        pattern: u32,
    ) -> Result<Option<usize>, MemFault> {
        let (region, off) = self.locate_ref(addr, len)?;
        let bytes = &region.data[off..off + len];
        let pat = pattern.to_le_bytes();
        // Double the pattern up to 64 bits and compare 8 bytes per step
        // (the pattern's phase stays aligned because steps are multiples
        // of four); only a differing word gets a per-byte look.
        let pat64 = u64::from(pattern) | (u64::from(pattern) << 32);
        let whole = len - len % 8;
        let clean_until = bytes[..whole]
            .chunks_exact(8)
            .position(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")) != pat64)
            .map_or(whole, |c| c * 8);
        for (j, &b) in bytes[clean_until..].iter().enumerate() {
            let i = clean_until + j;
            if b != pat[i % 4] {
                return Ok(Some(i));
            }
        }
        Ok(None)
    }

    /// Copies `out.len()` bytes starting at `addr` into `out`.
    ///
    /// # Errors
    ///
    /// Faults if the range is not entirely inside one mapped region.
    pub fn copy_out(&self, addr: Addr, out: &mut [u8]) -> Result<(), MemFault> {
        let (region, off) = self.locate_ref(addr, out.len())?;
        out.copy_from_slice(&region.data[off..off + out.len()]);
        Ok(())
    }

    /// Returns a zero-copy view of the entire region containing `addr`, as
    /// `(region base, region bytes)`. This is how heap-image capture reads
    /// a whole miniheap with one translation instead of one per slot.
    #[must_use]
    pub fn region_snapshot(&self, addr: Addr) -> Option<(Addr, &[u8])> {
        let idx = self.lookup_page(addr.get() >> PAGE_SHIFT)?;
        let region = self.region(idx);
        Some((Addr::new(region.base), &region.data))
    }

    /// Returns the base and length of the region containing `addr`.
    #[must_use]
    pub fn region_of(&self, addr: Addr) -> Option<(Addr, usize)> {
        let (base, data) = self.region_snapshot(addr)?;
        Some((base, data.len()))
    }

    /// Returns `true` if every byte of `[addr, addr + len)` is mapped.
    #[must_use]
    #[inline]
    pub fn is_mapped(&self, addr: Addr, len: usize) -> bool {
        self.locate(addr, len.max(1)).is_ok()
    }

    /// Iterates over `(base, len)` for every mapped region, in address order.
    pub fn regions(&self) -> impl Iterator<Item = (Addr, usize)> + '_ {
        self.by_base
            .iter()
            .map(|(&base, &idx)| (Addr::new(base), self.region(idx).data.len()))
    }

    /// Total mapped bytes.
    #[must_use]
    pub fn mapped_bytes(&self) -> usize {
        self.total_mapped
    }
}

fn round_up_pages(len: usize) -> usize {
    let len = len.max(1);
    len.div_ceil(PAGE_SIZE) * PAGE_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arena_with_region(len: usize) -> (Arena, Addr) {
        let mut arena = Arena::new();
        let mut rng = Rng::new(1234);
        let base = arena.map(len, &mut rng);
        (arena, base)
    }

    #[test]
    fn map_rounds_to_pages_and_zero_fills() {
        let (arena, base) = arena_with_region(100);
        assert_eq!(arena.region_of(base), Some((base, PAGE_SIZE)));
        assert_eq!(arena.read_bytes(base, PAGE_SIZE).unwrap(), &[0u8; 4096][..]);
    }

    #[test]
    fn read_write_round_trip() {
        let (mut arena, base) = arena_with_region(4096);
        arena.write_u64(base + 8, 0x0123_4567_89ab_cdef).unwrap();
        assert_eq!(arena.read_u64(base + 8).unwrap(), 0x0123_4567_89ab_cdef);
        arena.write_u32(base + 16, 0xdead_beef).unwrap();
        assert_eq!(arena.read_u32(base + 16).unwrap(), 0xdead_beef);
        arena.write_u8(base + 20, 7).unwrap();
        assert_eq!(arena.read_u8(base + 20).unwrap(), 7);
        arena.write_addr(base + 24, base).unwrap();
        assert_eq!(arena.read_addr(base + 24).unwrap(), base);
    }

    #[test]
    fn unmapped_access_faults() {
        let arena = Arena::new();
        let err = arena.read_u8(Addr::new(0x5000_0000)).unwrap_err();
        assert!(matches!(err, MemFault::Unmapped { .. }));
    }

    #[test]
    fn null_dereference_faults() {
        let arena = Arena::new();
        assert!(arena.read_u8(Addr::NULL).is_err());
        assert!(arena.read_u8(Addr::NULL + 16).is_err());
    }

    #[test]
    fn access_past_region_end_faults() {
        let (arena, base) = arena_with_region(4096);
        let err = arena.read_bytes(base + 4090, 16).unwrap_err();
        assert!(matches!(err, MemFault::OutOfBounds { .. }));
        assert!(arena.read_u8(base + 4096).is_err());
    }

    #[test]
    fn faulting_write_is_all_or_nothing() {
        let (mut arena, base) = arena_with_region(4096);
        arena.fill(base, 4096, 0xaa).unwrap();
        let err = arena
            .write_bytes(base + 4092, &[1, 2, 3, 4, 5, 6])
            .unwrap_err();
        assert!(matches!(err, MemFault::OutOfBounds { .. }));
        // Nothing was modified.
        assert_eq!(arena.read_bytes(base + 4092, 4).unwrap(), &[0xaa; 4]);
    }

    #[test]
    fn regions_have_guard_gaps() {
        let mut arena = Arena::new();
        let mut rng = Rng::new(7);
        let bases: Vec<Addr> = (0..64).map(|_| arena.map(PAGE_SIZE, &mut rng)).collect();
        for (i, &a) in bases.iter().enumerate() {
            for &b in &bases[i + 1..] {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                assert!(
                    hi - lo >= 2 * PAGE_SIZE as u64,
                    "regions at {lo} and {hi} lack a guard gap"
                );
            }
        }
    }

    #[test]
    fn unmap_then_access_faults() {
        let (mut arena, base) = arena_with_region(4096);
        arena.unmap(base).unwrap();
        assert!(arena.read_u8(base).is_err());
        assert!(matches!(arena.unmap(base), Err(MemFault::Unmapped { .. })));
    }

    #[test]
    fn map_at_rejects_overlap() {
        let mut arena = Arena::new();
        arena.map_at(Addr::new(0x1000_0000), 4096).unwrap();
        // Same page.
        assert!(arena.map_at(Addr::new(0x1000_0000), 4096).is_err());
        // Guard page adjacency is also rejected.
        assert!(arena.map_at(Addr::new(0x1000_1000), 4096).is_err());
        // Two pages away is fine.
        arena.map_at(Addr::new(0x1000_2000), 4096).unwrap();
    }

    #[test]
    fn map_at_rejects_unaligned() {
        let mut arena = Arena::new();
        assert!(arena.map_at(Addr::new(0x1000_0010), 4096).is_err());
    }

    #[test]
    fn fill_pattern_repeats_and_truncates() {
        let (mut arena, base) = arena_with_region(4096);
        arena.fill_pattern_u32(base, 10, 0x0403_0201).unwrap();
        assert_eq!(
            arena.read_bytes(base, 10).unwrap(),
            &[1, 2, 3, 4, 1, 2, 3, 4, 1, 2]
        );
    }

    #[test]
    fn region_iteration_and_accounting() {
        let mut arena = Arena::new();
        let mut rng = Rng::new(2);
        arena.map(PAGE_SIZE, &mut rng);
        arena.map(3 * PAGE_SIZE, &mut rng);
        assert_eq!(arena.mapped_bytes(), 4 * PAGE_SIZE);
        assert_eq!(arena.regions().count(), 2);
        let bases: Vec<u64> = arena.regions().map(|(a, _)| a.get()).collect();
        assert!(bases.windows(2).all(|w| w[0] < w[1]), "regions not sorted");
    }

    #[test]
    fn is_mapped_checks_whole_range() {
        let (arena, base) = arena_with_region(4096);
        assert!(arena.is_mapped(base, 4096));
        assert!(!arena.is_mapped(base, 4097));
        assert!(!arena.is_mapped(base + 4095, 2));
        assert!(arena.is_mapped(base + 4095, 1));
    }

    #[test]
    fn placement_is_randomized_across_seeds() {
        let mut a1 = Arena::new();
        let mut a2 = Arena::new();
        let b1 = a1.map(4096, &mut Rng::new(1));
        let b2 = a2.map(4096, &mut Rng::new(2));
        assert_ne!(b1, b2, "two seeds produced identical placement");
    }

    #[test]
    fn compare_pattern_finds_first_mismatch() {
        let (mut arena, base) = arena_with_region(4096);
        arena.fill_pattern_u32(base, 100, 0xABCD_EF01).unwrap();
        assert_eq!(arena.compare_pattern(base, 100, 0xABCD_EF01).unwrap(), None);
        // Aligned word mismatch.
        arena.write_u8(base + 41, 0x5A).unwrap();
        assert_eq!(
            arena.compare_pattern(base, 100, 0xABCD_EF01).unwrap(),
            Some(41)
        );
        // Mismatch in the truncated tail word.
        arena.fill_pattern_u32(base, 100, 0xABCD_EF01).unwrap();
        arena.write_u8(base + 98, 0x5A).unwrap();
        assert_eq!(
            arena.compare_pattern(base, 99, 0xABCD_EF01).unwrap(),
            Some(98)
        );
        // Out-of-bounds compare faults like any other access.
        assert!(arena.compare_pattern(base + 4092, 8, 1).is_err());
    }

    #[test]
    fn copy_out_matches_read_bytes() {
        let (mut arena, base) = arena_with_region(4096);
        arena.write_bytes(base + 7, b"exterminate").unwrap();
        let mut buf = [0u8; 11];
        arena.copy_out(base + 7, &mut buf).unwrap();
        assert_eq!(&buf, b"exterminate");
        let mut big = [0u8; 16];
        assert!(arena.copy_out(base + 4090, &mut big).is_err());
    }

    #[test]
    fn region_snapshot_is_whole_region() {
        let (mut arena, base) = arena_with_region(2 * 4096);
        arena.write_u8(base + 5000, 9).unwrap();
        let (snap_base, bytes) = arena.region_snapshot(base + 6000).unwrap();
        assert_eq!(snap_base, base);
        assert_eq!(bytes.len(), 2 * 4096);
        assert_eq!(bytes[5000], 9);
        assert!(arena.region_snapshot(Addr::new(0x2000)).is_none());
    }

    /// Regression test: unmapping one region must not poison cached
    /// translations of *other* regions (the old single-entry cache was
    /// flushed whole on any unmap; worse, a stale entry must never
    /// resurrect the dead region).
    #[test]
    fn unmap_keeps_unrelated_translations_correct() {
        let mut arena = Arena::new();
        let mut rng = Rng::new(99);
        let a = arena.map(4096, &mut rng);
        let b = arena.map(4096, &mut rng);
        let c = arena.map(4096, &mut rng);
        arena.write_u64(a, 0xA).unwrap();
        arena.write_u64(b, 0xB).unwrap();
        arena.write_u64(c, 0xC).unwrap();
        // Warm translations for all three, then unmap B.
        assert_eq!(arena.read_u64(a).unwrap(), 0xA);
        assert_eq!(arena.read_u64(b).unwrap(), 0xB);
        assert_eq!(arena.read_u64(c).unwrap(), 0xC);
        arena.unmap(b).unwrap();
        // A and C still translate (and correctly); B faults.
        assert_eq!(arena.read_u64(a).unwrap(), 0xA);
        assert_eq!(arena.read_u64(c).unwrap(), 0xC);
        assert!(matches!(arena.read_u64(b), Err(MemFault::Unmapped { .. })));
        // A fresh region may reuse B's internal id; the old address must
        // still fault and the new one must read its own zeroed memory.
        let d = arena.map(4096, &mut rng);
        assert!(arena.read_u64(b).is_err() || b == d);
        assert_eq!(arena.read_u64(d).unwrap(), 0);
        assert_eq!(arena.read_u64(a).unwrap(), 0xA);
    }

    /// A reset arena must be observationally identical to a fresh one:
    /// identical placement under the same RNG, no surviving mappings, no
    /// stale TLB entries — the property pooled replica reuse stands on.
    #[test]
    fn reset_arena_replays_like_fresh() {
        let mut reused = Arena::new();
        // A first "input": map, write, unmap some, then reset.
        let mut rng = Rng::new(5);
        let bases: Vec<Addr> = (0..32)
            .map(|_| reused.map(2 * PAGE_SIZE, &mut rng))
            .collect();
        for (i, &b) in bases.iter().enumerate() {
            reused.write_u64(b, i as u64).unwrap();
        }
        for &b in bases.iter().step_by(2) {
            reused.unmap(b).unwrap();
        }
        reused.reset();
        assert_eq!(reused.mapped_bytes(), 0);
        assert_eq!(reused.regions().count(), 0);
        for &b in &bases {
            assert!(reused.read_u8(b).is_err(), "mapping survived reset");
        }
        // A second "input" must replay exactly like a fresh arena under the
        // same seed: same placements, same contents, zeroed memory.
        let mut fresh = Arena::new();
        let mut rng_a = Rng::new(77);
        let mut rng_b = Rng::new(77);
        for round in 0u64..64 {
            let a = reused.map(PAGE_SIZE, &mut rng_a);
            let b = fresh.map(PAGE_SIZE, &mut rng_b);
            assert_eq!(a, b, "placement diverged at round {round}");
            assert_eq!(reused.read_u64(a).unwrap(), 0, "stale bytes after reset");
            reused.write_u64(a, round).unwrap();
            fresh.write_u64(b, round).unwrap();
        }
        assert_eq!(reused.mapped_bytes(), fresh.mapped_bytes());
    }

    /// Repeated reset/map cycles recycle leaf tables rather than growing
    /// the spare pool without bound.
    #[test]
    fn reset_recycles_leaves_across_cycles() {
        let mut arena = Arena::new();
        for cycle in 0u64..10 {
            let mut rng = Rng::new(cycle + 1);
            let bases: Vec<Addr> = (0..16).map(|_| arena.map(PAGE_SIZE, &mut rng)).collect();
            for &b in &bases {
                arena.write_u64(b, cycle).unwrap();
                assert_eq!(arena.read_u64(b).unwrap(), cycle);
            }
            arena.reset();
            assert!(
                arena.spare_leaves.len() <= SPARE_LEAF_CAP,
                "spare pool exceeded its cap"
            );
            assert!(
                cycle == 0 || !arena.spare_leaves.is_empty(),
                "reset retired no leaves for reuse"
            );
        }
    }

    /// Two regions whose pages collide in the direct-mapped TLB must evict
    /// each other without ever returning the wrong region's bytes.
    #[test]
    fn tlb_conflict_misses_stay_correct() {
        let mut arena = Arena::new();
        // Pages 0x10000 and 0x10100 share TLB slot 0 (256-entry TLB).
        let a = Addr::new(0x1000_0000);
        let b = Addr::new(0x1010_0000);
        arena.map_at(a, 4096).unwrap();
        arena.map_at(b, 4096).unwrap();
        arena.write_u64(a, 1).unwrap();
        arena.write_u64(b, 2).unwrap();
        for _ in 0..100 {
            assert_eq!(arena.read_u64(a).unwrap(), 1);
            assert_eq!(arena.read_u64(b).unwrap(), 2);
        }
        arena.unmap(a).unwrap();
        assert!(arena.read_u64(a).is_err());
        assert_eq!(arena.read_u64(b).unwrap(), 2);
    }

    /// Freshly mapped pages are dirty (mapping zero-fills them), and
    /// `clear_dirty` establishes a clean baseline.
    #[test]
    fn mapping_dirties_and_clear_establishes_baseline() {
        let (arena, base) = arena_with_region(3 * PAGE_SIZE);
        assert_eq!(
            arena.dirty_pages(),
            vec![base, base + PAGE_SIZE as u64, base + 2 * PAGE_SIZE as u64]
        );
        arena.clear_dirty();
        assert!(arena.dirty_pages().is_empty());
        let (b, flags) = arena.region_dirty_pages(base + 5000).unwrap();
        assert_eq!(b, base);
        assert_eq!(flags, vec![false, false, false]);
    }

    /// Every store path marks exactly the pages it touches; reads mark none.
    #[test]
    fn stores_mark_their_pages() {
        let (mut arena, base) = arena_with_region(4 * PAGE_SIZE);
        arena.clear_dirty();
        arena.read_u64(base + 100).unwrap();
        assert!(arena.dirty_pages().is_empty(), "reads must not dirty");
        arena.write_u8(base + 10, 1).unwrap();
        assert_eq!(arena.dirty_pages(), vec![base]);
        // A store crossing a page boundary marks both pages.
        arena.write_u64(base + PAGE_SIZE as u64 * 2 - 4, 7).unwrap();
        let (_, flags) = arena.region_dirty_pages(base).unwrap();
        assert_eq!(flags, vec![true, true, true, false]);
        // Bulk fill over the last two pages.
        arena.clear_dirty();
        arena
            .fill_pattern_u32(base + 2 * PAGE_SIZE as u64 + 8, PAGE_SIZE + 16, 0xAB)
            .unwrap();
        let (_, flags) = arena.region_dirty_pages(base).unwrap();
        assert_eq!(flags, vec![false, false, true, true]);
        // A faulting store dirties nothing.
        arena.clear_dirty();
        assert!(arena
            .write_bytes(base + 4 * PAGE_SIZE as u64 - 2, &[0; 8])
            .is_err());
        assert!(arena.dirty_pages().is_empty());
    }

    /// Unmapping clears a region's dirty bits; remapping at the same spot
    /// re-dirties, so stale clean-page assumptions can't survive reuse.
    #[test]
    fn unmap_clears_and_remap_redirties() {
        let mut arena = Arena::new();
        let base = Addr::new(0x1000_0000);
        arena.map_at(base, 2 * PAGE_SIZE).unwrap();
        arena.clear_dirty();
        arena.write_u8(base, 9).unwrap();
        assert_eq!(arena.dirty_pages(), vec![base]);
        arena.unmap(base).unwrap();
        assert!(arena.dirty_pages().is_empty());
        arena.map_at(base, 2 * PAGE_SIZE).unwrap();
        assert_eq!(arena.dirty_pages(), vec![base, base + PAGE_SIZE as u64]);
    }

    /// A reset (reused) arena reports no stale dirty pages even though its
    /// leaf tables are recycled through the spare pool.
    #[test]
    fn reset_leaves_no_stale_dirty_pages() {
        let mut arena = Arena::new();
        let mut rng = Rng::new(11);
        for _ in 0..8 {
            let b = arena.map(2 * PAGE_SIZE, &mut rng);
            arena.write_u64(b + 100, 1).unwrap();
        }
        assert!(!arena.dirty_pages().is_empty());
        arena.reset();
        assert!(arena.dirty_pages().is_empty());
        // Recycled leaves start clean: only the freshly mapped pages of the
        // next cycle are dirty.
        let b = arena.map(PAGE_SIZE, &mut rng);
        assert_eq!(arena.dirty_pages(), vec![b]);
    }

    /// The single-page dirty cache never suppresses a mark it shouldn't:
    /// alternating stores across pages and a clear in between stay exact.
    #[test]
    fn dirty_cache_stays_coherent() {
        let (mut arena, base) = arena_with_region(2 * PAGE_SIZE);
        arena.clear_dirty();
        for _ in 0..10 {
            arena.write_u8(base + 1, 1).unwrap();
            arena.write_u8(base + PAGE_SIZE as u64 + 1, 2).unwrap();
        }
        assert_eq!(arena.dirty_pages(), vec![base, base + PAGE_SIZE as u64]);
        arena.clear_dirty();
        // The cache was invalidated by clear_dirty: the next store to the
        // same page must mark again.
        arena.write_u8(base + PAGE_SIZE as u64 + 1, 3).unwrap();
        assert_eq!(arena.dirty_pages(), vec![base + PAGE_SIZE as u64]);
    }

    /// Interleaved map/unmap/access across many regions: every read sees
    /// the bytes its region was stamped with, never a stale translation.
    #[test]
    fn interleaved_map_unmap_read_sequence() {
        let mut arena = Arena::new();
        let mut rng = Rng::new(42);
        let mut live: Vec<(Addr, u64)> = Vec::new();
        for round in 0u64..200 {
            if live.len() >= 8 {
                let (victim, _) = live.swap_remove((round % 8) as usize);
                arena.unmap(victim).unwrap();
                assert!(arena.read_u8(victim).is_err());
            }
            let base = arena.map(4096, &mut rng);
            arena.write_u64(base, round).unwrap();
            live.push((base, round));
            for &(addr, stamp) in &live {
                assert_eq!(arena.read_u64(addr).unwrap(), stamp);
            }
        }
    }
}
