//! Simulated sparse address space used by every allocator in the
//! Exterminator reproduction.
//!
//! The paper instruments the real process heap of C programs. Reproducing
//! that directly in Rust would make every injected memory error undefined
//! behaviour, so this crate provides the substitute substrate described in
//! `DESIGN.md`: a 48-bit *simulated* address space ([`Arena`]) made of
//! sparsely mapped pages. Heap pointers are [`Addr`] values (plain offsets),
//! and all loads/stores are bounds-checked: an access to unmapped memory
//! returns a [`MemFault`], which the runtime treats exactly like a SIGSEGV.
//!
//! Because miniheaps are mapped at *random* page-aligned addresses (just as
//! DieHard mmaps its miniheaps), buffer overflows that run off the end of a
//! mapped region fault, while overflows within a miniheap silently corrupt
//! whatever the randomized layout placed there — the behaviour Exterminator's
//! probabilistic isolation depends on.
//!
//! # Example
//!
//! ```
//! use xt_arena::{Arena, Rng};
//!
//! # fn main() -> Result<(), xt_arena::MemFault> {
//! let mut arena = Arena::new();
//! let mut rng = Rng::new(42);
//! let region = arena.map(4096, &mut rng);
//! arena.write_u64(region, 0xdead_beef)?;
//! assert_eq!(arena.read_u64(region)?, 0xdead_beef);
//! // One byte past the region faults, like a segfault would.
//! assert!(arena.read_u8(region + 4096).is_err());
//! # Ok(())
//! # }
//! ```

mod addr;
mod arena;
mod fault;
mod rng;

pub use addr::Addr;
pub use arena::{Arena, PAGE_SIZE};
pub use fault::MemFault;
pub use rng::Rng;
