//! Simulated sparse address space used by every allocator in the
//! Exterminator reproduction.
//!
//! The paper instruments the real process heap of C programs. Reproducing
//! that directly in Rust would make every injected memory error undefined
//! behaviour, so this crate provides the substitute substrate described in
//! `DESIGN.md`: a 47-bit *simulated* address space ([`Arena`]) made of
//! sparsely mapped pages. Heap pointers are [`Addr`] values (plain offsets),
//! and all loads/stores are bounds-checked: an access to unmapped memory
//! returns a [`MemFault`], which the runtime treats exactly like a SIGSEGV.
//!
//! Because miniheaps are mapped at *random* page-aligned addresses (just as
//! DieHard mmaps its miniheaps), buffer overflows that run off the end of a
//! mapped region fault, while overflows within a miniheap silently corrupt
//! whatever the randomized layout placed there — the behaviour Exterminator's
//! probabilistic isolation depends on.
//!
//! # Translation: page table + TLB
//!
//! Every simulated access is translated the way hardware translates it:
//!
//! 1. a **256-entry direct-mapped TLB** indexed by page number resolves
//!    repeat accesses to recently touched pages with one array probe;
//! 2. on a miss, a **two-level page table** — a directory of fixed
//!    512-page leaf tables, each mapping page → region id — resolves the
//!    page in O(1) and refills the TLB.
//!
//! Unmapping a region performs a *precise* TLB shootdown: only the dead
//! region's entries are invalidated, so a `free` does not slow down
//! unrelated accesses. (An earlier design used a `BTreeMap` range query
//! softened by a single-entry cache flushed whole on any unmap; that
//! charged the simulation an O(log n) tree walk per miss — a cost real
//! hardware does not pay, which distorted exactly the overhead the paper
//! measures in Fig. 7.)
//!
//! ## Fidelity: what the simulation charges vs. real hardware
//!
//! | operation            | real hardware              | this arena                    |
//! |----------------------|----------------------------|-------------------------------|
//! | load/store, TLB hit  | ~1 cycle address check     | array probe + bounds check    |
//! | load/store, TLB miss | page-table walk (O(1))     | hash + leaf index (O(1))      |
//! | `mmap`/`munmap`      | kernel, O(pages)           | page-table edit, O(pages)     |
//! | canary fill/check    | word-wide loop             | bulk [`Arena::fill_pattern_u32`] / [`Arena::compare_pattern`] |
//! | heap-image capture   | `memcpy` of mapped pages   | [`Arena::region_snapshot`] + slice copies |
//!
//! Nothing is charged per-access that scales with the number of live
//! regions, so measured allocator overheads reflect the algorithms under
//! study (randomized probing, canary work), not the substrate.
//!
//! # Dirty tracking for incremental capture
//!
//! Each page-table leaf carries one **dirty bit per page**, the substrate
//! for `xt-image`'s incremental heap capture. The protocol:
//!
//! - **Set** — every successful store (`write_u8/u32/u64/addr`,
//!   `write_bytes`, `fill`, `fill_pattern_u32`; they all funnel through one
//!   internal locate step) marks the pages it touches, and `map`/`map_at`
//!   mark freshly mapped pages (the zero-fill is a store — and this is what
//!   keeps an unmap-then-remap at the same address from ever looking
//!   clean). Faulting stores modify nothing and mark nothing.
//! - **Clear** — [`Arena::clear_dirty`] (called by capture once it has read
//!   the heap, via `&self` interior mutability) zeroes every bit, making
//!   the captured contents the new baseline; [`Arena::unmap`] clears the
//!   dead pages' bits; [`Arena::reset`] drops every leaf, so a reused
//!   replica arena starts with no dirty pages at all.
//! - **Query** — [`Arena::region_dirty_pages`] answers capture's per-region
//!   question ("which pages changed since the baseline?");
//!   [`Arena::dirty_pages`] enumerates all dirty pages for tests.
//!
//! The TLB is unaffected: it caches translations, not write state, so
//! dirty clears need no shootdown. Spare-leaf recycling (`reset` pools the
//! 2 KiB entry tables) cannot leak dirty bits because the bitmap lives in
//! the leaf struct, not in the pooled allocation — a recycled leaf always
//! starts clean.
//!
//! # Example
//!
//! ```
//! use xt_arena::{Arena, Rng};
//!
//! # fn main() -> Result<(), xt_arena::MemFault> {
//! let mut arena = Arena::new();
//! let mut rng = Rng::new(42);
//! let region = arena.map(4096, &mut rng);
//! arena.write_u64(region, 0xdead_beef)?;
//! assert_eq!(arena.read_u64(region)?, 0xdead_beef);
//! // One byte past the region faults, like a segfault would.
//! assert!(arena.read_u8(region + 4096).is_err());
//! # Ok(())
//! # }
//! ```

mod addr;
mod arena;
mod fault;
mod rng;

pub use addr::Addr;
pub use arena::{Arena, PAGE_SIZE};
pub use fault::MemFault;
pub use rng::Rng;
