//! Property tests for the simulated address space.

use proptest::prelude::*;

use xt_arena::{Arena, MemFault, Rng, PAGE_SIZE};

proptest! {
    /// Whatever bytes go in come back out, at any in-bounds offset.
    #[test]
    fn write_read_round_trip(
        seed in 0u64..1000,
        offset in 0usize..4000,
        data in proptest::collection::vec(any::<u8>(), 1..96),
    ) {
        let mut arena = Arena::new();
        let base = arena.map(PAGE_SIZE, &mut Rng::new(seed));
        prop_assume!(offset + data.len() <= PAGE_SIZE);
        arena.write_bytes(base + offset as u64, &data).unwrap();
        prop_assert_eq!(arena.read_bytes(base + offset as u64, data.len()).unwrap(), &data[..]);
    }

    /// Any access crossing the end of a mapping faults and leaves memory
    /// untouched.
    #[test]
    fn out_of_bounds_faults_cleanly(
        seed in 0u64..1000,
        overshoot in 1usize..64,
        len in 1usize..64,
    ) {
        let mut arena = Arena::new();
        let base = arena.map(PAGE_SIZE, &mut Rng::new(seed));
        let start = base + (PAGE_SIZE + overshoot - len.min(overshoot)) as u64;
        let result = arena.write_bytes(start, &vec![0xAB; len]);
        prop_assert!(result.is_err());
        // The mapped prefix (if any) must be unmodified (all-or-nothing).
        let mapped_prefix = PAGE_SIZE.saturating_sub((start - base) as usize);
        if mapped_prefix > 0 && mapped_prefix < len {
            let tail = arena.read_bytes(start, mapped_prefix).unwrap();
            prop_assert!(tail.iter().all(|&b| b == 0), "partial write leaked");
        }
    }

    /// Randomly placed regions never overlap, pairwise, including guard
    /// pages.
    #[test]
    fn mappings_never_overlap(seed in 0u64..500, sizes in proptest::collection::vec(1usize..40_000, 2..12)) {
        let mut arena = Arena::new();
        let mut rng = Rng::new(seed);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for len in sizes {
            let base = arena.map(len, &mut rng);
            let (actual_base, actual_len) = arena.region_of(base).unwrap();
            prop_assert_eq!(actual_base, base);
            spans.push((base.get(), base.get() + actual_len as u64));
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            prop_assert!(w[0].1 + PAGE_SIZE as u64 <= w[1].0, "overlap or missing guard");
        }
    }

    /// `fill_pattern_u32` writes exactly the repeating pattern.
    #[test]
    fn fill_pattern_is_exact(seed in 0u64..500, pattern in any::<u32>(), len in 1usize..256) {
        let mut arena = Arena::new();
        let base = arena.map(PAGE_SIZE, &mut Rng::new(seed));
        arena.fill_pattern_u32(base, len, pattern).unwrap();
        let bytes = arena.read_bytes(base, len).unwrap();
        let expect = pattern.to_le_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            prop_assert_eq!(b, expect[i % 4]);
        }
    }

    /// Unmapped addresses always fault with `Unmapped`.
    #[test]
    fn unmapped_reads_fault(addr in 0u64..0x0000_1000_0000) {
        let arena = Arena::new();
        let faulted = matches!(
            arena.read_u8(xt_arena::Addr::new(addr)),
            Err(MemFault::Unmapped { .. })
        );
        prop_assert!(faulted);
    }
}
