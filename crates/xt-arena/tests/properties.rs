//! Property tests for the simulated address space.
//!
//! Besides direct invariants, these tests pin the page-table/TLB arena to
//! the *observable semantics* of the original `BTreeMap` implementation:
//! a naive reference model (linear scan over `(base, bytes)` pairs) is
//! driven in lockstep through random map/unmap/access interleavings, and
//! every result — data read, fault classification (`Unmapped` vs
//! `OutOfBounds`), all-or-nothing writes, guard-page faults — must agree.
//! The model also tracks the set of dirty pages (stored-to since the last
//! `clear_dirty`), pinning the arena's dirty bitmap to the obvious
//! semantics incremental heap capture depends on.

use std::collections::BTreeSet;

use proptest::prelude::*;

use xt_arena::{Addr, Arena, MemFault, Rng, PAGE_SIZE};

/// The reference semantics: a flat list of regions, searched linearly,
/// plus the set of dirty page addresses.
#[derive(Default)]
struct ModelArena {
    regions: Vec<(u64, Vec<u8>)>,
    dirty: BTreeSet<u64>,
}

/// What the model says an access should observe.
#[derive(Debug, PartialEq, Eq)]
enum ModelAccess {
    Ok,
    Unmapped,
    OutOfBounds,
}

impl ModelArena {
    fn map(&mut self, base: Addr, len: usize) {
        self.regions.push((base.get(), vec![0u8; len]));
        // Mapping zero-fills: the fresh pages are dirty.
        self.mark_dirty(base.get(), len);
    }

    fn unmap(&mut self, base: Addr) -> bool {
        let Some(pos) = self.regions.iter().position(|&(b, _)| b == base.get()) else {
            return false;
        };
        let (b, data) = self.regions.swap_remove(pos);
        for page in 0..data.len() / PAGE_SIZE {
            self.dirty.remove(&(b + (page * PAGE_SIZE) as u64));
        }
        true
    }

    fn mark_dirty(&mut self, addr: u64, len: usize) {
        if len == 0 {
            return;
        }
        let first = addr / PAGE_SIZE as u64;
        let last = (addr + len as u64 - 1) / PAGE_SIZE as u64;
        for page in first..=last {
            self.dirty.insert(page * PAGE_SIZE as u64);
        }
    }

    fn dirty_pages(&self) -> Vec<Addr> {
        self.dirty.iter().map(|&p| Addr::new(p)).collect()
    }

    fn classify(&self, addr: Addr, len: usize) -> ModelAccess {
        let raw = addr.get();
        for &(base, ref data) in &self.regions {
            if raw >= base && raw < base + data.len() as u64 {
                return if raw + len as u64 <= base + data.len() as u64 {
                    ModelAccess::Ok
                } else {
                    ModelAccess::OutOfBounds
                };
            }
        }
        ModelAccess::Unmapped
    }

    fn write(&mut self, addr: Addr, bytes: &[u8]) -> ModelAccess {
        let verdict = self.classify(addr, bytes.len());
        if verdict == ModelAccess::Ok {
            let raw = addr.get();
            for &mut (base, ref mut data) in &mut self.regions {
                if raw >= base && raw < base + data.len() as u64 {
                    let off = (raw - base) as usize;
                    data[off..off + bytes.len()].copy_from_slice(bytes);
                }
            }
            // Only a successful store dirties its pages.
            self.mark_dirty(addr.get(), bytes.len());
        }
        verdict
    }

    fn read(&self, addr: Addr, len: usize) -> Result<&[u8], ModelAccess> {
        match self.classify(addr, len) {
            ModelAccess::Ok => {
                let raw = addr.get();
                let (base, data) = self
                    .regions
                    .iter()
                    .find(|&&(base, ref data)| raw >= base && raw < base + data.len() as u64)
                    .expect("classified Ok");
                let off = (raw - base) as usize;
                Ok(&data[off..off + len])
            }
            verdict => Err(verdict),
        }
    }
}

fn classify_fault(result: Result<(), MemFault>) -> ModelAccess {
    match result {
        Ok(()) => ModelAccess::Ok,
        Err(MemFault::Unmapped { .. }) => ModelAccess::Unmapped,
        Err(MemFault::OutOfBounds { .. }) => ModelAccess::OutOfBounds,
        Err(MemFault::ExhaustedAddressSpace { .. }) => {
            panic!("access returned a mapping fault")
        }
    }
}

/// One step of a randomized arena script.
#[derive(Clone, Debug)]
enum ArenaOp {
    /// Map a fresh region of 1–3 pages.
    Map(usize),
    /// Unmap the nth live region (modulo count).
    UnmapNth(usize),
    /// Write a byte pattern at an offset relative to the nth region's
    /// base; offsets may run past the region end or into guard pages.
    Write(usize, usize, u8, usize),
    /// Read relative to the nth region's base.
    Read(usize, usize, usize),
    /// Read at an absolute (mostly unmapped) address.
    ReadAbs(u64, usize),
    /// Bulk-fill relative to the nth region's base (dirties like a store).
    Fill(usize, usize, u8, usize),
    /// Clear every dirty bit (what a heap-image capture does).
    ClearDirty,
}

fn arena_op() -> impl Strategy<Value = ArenaOp> {
    prop_oneof![
        (1usize..3 * PAGE_SIZE).prop_map(ArenaOp::Map),
        (0usize..16).prop_map(ArenaOp::UnmapNth),
        (0usize..16, 0usize..PAGE_SIZE + 64, any::<u8>(), 1usize..96)
            .prop_map(|(n, off, fill, len)| ArenaOp::Write(n, off, fill, len)),
        (0usize..16, 0usize..PAGE_SIZE + 64, 1usize..96)
            .prop_map(|(n, off, len)| ArenaOp::Read(n, off, len)),
        (0u64..0x8000_0000_0000, 1usize..64).prop_map(|(a, l)| ArenaOp::ReadAbs(a, l)),
        (
            0usize..16,
            0usize..PAGE_SIZE + 64,
            any::<u8>(),
            1usize..2 * PAGE_SIZE
        )
            .prop_map(|(n, off, fill, len)| ArenaOp::Fill(n, off, fill, len)),
        Just(ArenaOp::ClearDirty),
    ]
}

proptest! {
    /// Whatever bytes go in come back out, at any in-bounds offset.
    #[test]
    fn write_read_round_trip(
        seed in 0u64..1000,
        offset in 0usize..4000,
        data in proptest::collection::vec(any::<u8>(), 1..96),
    ) {
        let mut arena = Arena::new();
        let base = arena.map(PAGE_SIZE, &mut Rng::new(seed));
        prop_assume!(offset + data.len() <= PAGE_SIZE);
        arena.write_bytes(base + offset as u64, &data).unwrap();
        prop_assert_eq!(arena.read_bytes(base + offset as u64, data.len()).unwrap(), &data[..]);
    }

    /// Any access crossing the end of a mapping faults and leaves memory
    /// untouched.
    #[test]
    fn out_of_bounds_faults_cleanly(
        seed in 0u64..1000,
        overshoot in 1usize..64,
        len in 1usize..64,
    ) {
        let mut arena = Arena::new();
        let base = arena.map(PAGE_SIZE, &mut Rng::new(seed));
        let start = base + (PAGE_SIZE + overshoot - len.min(overshoot)) as u64;
        let result = arena.write_bytes(start, &vec![0xAB; len]);
        prop_assert!(result.is_err());
        // The mapped prefix (if any) must be unmodified (all-or-nothing).
        let mapped_prefix = PAGE_SIZE.saturating_sub((start - base) as usize);
        if mapped_prefix > 0 && mapped_prefix < len {
            let tail = arena.read_bytes(start, mapped_prefix).unwrap();
            prop_assert!(tail.iter().all(|&b| b == 0), "partial write leaked");
        }
    }

    /// Randomly placed regions never overlap, pairwise, including guard
    /// pages.
    #[test]
    fn mappings_never_overlap(seed in 0u64..500, sizes in proptest::collection::vec(1usize..40_000, 2..12)) {
        let mut arena = Arena::new();
        let mut rng = Rng::new(seed);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for len in sizes {
            let base = arena.map(len, &mut rng);
            let (actual_base, actual_len) = arena.region_of(base).unwrap();
            prop_assert_eq!(actual_base, base);
            spans.push((base.get(), base.get() + actual_len as u64));
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            prop_assert!(w[0].1 + PAGE_SIZE as u64 <= w[1].0, "overlap or missing guard");
        }
    }

    /// `fill_pattern_u32` writes exactly the repeating pattern.
    #[test]
    fn fill_pattern_is_exact(seed in 0u64..500, pattern in any::<u32>(), len in 1usize..256) {
        let mut arena = Arena::new();
        let base = arena.map(PAGE_SIZE, &mut Rng::new(seed));
        arena.fill_pattern_u32(base, len, pattern).unwrap();
        let bytes = arena.read_bytes(base, len).unwrap();
        let expect = pattern.to_le_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            prop_assert_eq!(b, expect[i % 4]);
        }
    }

    /// Unmapped addresses always fault with `Unmapped`.
    #[test]
    fn unmapped_reads_fault(addr in 0u64..0x0000_1000_0000) {
        let arena = Arena::new();
        let faulted = matches!(
            arena.read_u8(xt_arena::Addr::new(addr)),
            Err(MemFault::Unmapped { .. })
        );
        prop_assert!(faulted);
    }

    /// The page-table arena is observably equivalent to the reference
    /// semantics under arbitrary map/unmap/access interleavings: identical
    /// data, identical `Unmapped` vs `OutOfBounds` classification, and
    /// all-or-nothing writes.
    #[test]
    fn equivalent_to_reference_model(
        seed in 0u64..10_000,
        ops in proptest::collection::vec(arena_op(), 1..120),
    ) {
        let mut arena = Arena::new();
        let mut model = ModelArena::default();
        let mut rng = Rng::new(seed);
        let mut bases: Vec<Addr> = Vec::new();
        for op in ops {
            match op {
                ArenaOp::Map(len) => {
                    let base = arena.map(len, &mut rng);
                    let (b, actual_len) = arena.region_of(base).expect("fresh mapping resolves");
                    prop_assert_eq!(b, base);
                    model.map(base, actual_len);
                    bases.push(base);
                }
                ArenaOp::UnmapNth(n) => {
                    if bases.is_empty() { continue; }
                    let base = bases.swap_remove(n % bases.len());
                    prop_assert!(arena.unmap(base).is_ok());
                    prop_assert!(model.unmap(base));
                    // Unmapped base faults identically in both.
                    prop_assert_eq!(
                        classify_fault(arena.read_bytes(base, 1).map(|_| ())),
                        ModelAccess::Unmapped
                    );
                }
                ArenaOp::Write(n, off, fill, len) => {
                    if bases.is_empty() { continue; }
                    let addr = bases[n % bases.len()] + off as u64;
                    let bytes = vec![fill; len];
                    let got = classify_fault(arena.write_bytes(addr, &bytes));
                    let want = model.write(addr, &bytes);
                    prop_assert_eq!(&got, &want, "write at +{} len {}: {:?} vs {:?}", off, len, got, want);
                    if got != ModelAccess::Ok {
                        // All-or-nothing: the mapped prefix, if any, must be
                        // untouched, which the full-region compare below
                        // (after the loop) also enforces continuously.
                        prop_assert!(got == ModelAccess::Unmapped || got == ModelAccess::OutOfBounds);
                    }
                }
                ArenaOp::Read(n, off, len) => {
                    if bases.is_empty() { continue; }
                    let addr = bases[n % bases.len()] + off as u64;
                    match (arena.read_bytes(addr, len), model.read(addr, len)) {
                        (Ok(got), Ok(want)) => prop_assert_eq!(got, want),
                        (Err(fault), Err(want)) => {
                            prop_assert_eq!(classify_fault(Err(fault)), want);
                        }
                        (got, want) => {
                            return Err(TestCaseError::Fail(format!(
                                "read at +{off} len {len} diverged: {got:?} vs {want:?}"
                            )));
                        }
                    }
                }
                ArenaOp::ReadAbs(raw, len) => {
                    let addr = Addr::new(raw);
                    let got = classify_fault(arena.read_bytes(addr, len).map(|_| ()));
                    let want = model.classify(addr, len);
                    prop_assert_eq!(got, want);
                }
                ArenaOp::Fill(n, off, fill, len) => {
                    if bases.is_empty() { continue; }
                    let addr = bases[n % bases.len()] + off as u64;
                    let got = classify_fault(arena.fill(addr, len, fill));
                    let want = model.write(addr, &vec![fill; len]);
                    prop_assert_eq!(got, want);
                }
                ArenaOp::ClearDirty => {
                    arena.clear_dirty();
                    model.dirty.clear();
                }
            }
            // Continuous full-state equivalence: every region's bytes match
            // the model byte-for-byte (this is what makes faulting writes
            // provably all-or-nothing across the whole interleaving).
            for &base in &bases {
                let (b, len) = arena.region_of(base).expect("live region resolves");
                prop_assert_eq!(b, base);
                prop_assert_eq!(
                    arena.read_bytes(base, len).unwrap(),
                    model.read(base, len).unwrap()
                );
            }
            prop_assert_eq!(arena.regions().count(), bases.len());
            // The dirty-page set matches the model's after every op: reads
            // never dirty, stores (scalar and bulk) and fresh mappings do,
            // unmap and clear_dirty erase, faulting accesses change nothing.
            prop_assert_eq!(arena.dirty_pages(), model.dirty_pages());
        }
    }

    /// Bulk store paths dirty exactly the pages an equivalent run of
    /// per-byte stores dirties, and `reset` leaves a reused arena with no
    /// stale dirty pages.
    #[test]
    fn bulk_stores_dirty_like_scalar_stores(
        off in 0usize..3 * PAGE_SIZE,
        len in 0usize..2 * PAGE_SIZE,
        pattern in any::<u32>(),
        which in 0usize..3,
    ) {
        let total = 4 * PAGE_SIZE;
        prop_assume!(off + len.max(1) <= total);
        let base = Addr::new(0x1000_0000);
        let mut bulk = Arena::new();
        let mut scalar = Arena::new();
        bulk.map_at(base, total).unwrap();
        scalar.map_at(base, total).unwrap();
        bulk.clear_dirty();
        scalar.clear_dirty();
        let addr = base + off as u64;
        match which {
            0 => bulk.fill(addr, len, 0xAA).unwrap(),
            1 => bulk.fill_pattern_u32(addr, len, pattern).unwrap(),
            _ => bulk.write_bytes(addr, &vec![0x5A; len]).unwrap(),
        }
        for i in 0..len {
            scalar.write_u8(addr + i as u64, 1).unwrap();
        }
        prop_assert_eq!(bulk.dirty_pages(), scalar.dirty_pages());
        // Reset clears all dirty state; the reused arena reports only what
        // the next cycle actually dirties.
        bulk.reset();
        prop_assert!(bulk.dirty_pages().is_empty());
        bulk.map_at(base, PAGE_SIZE).unwrap();
        prop_assert_eq!(bulk.dirty_pages(), vec![base]);
        bulk.clear_dirty();
        prop_assert!(bulk.dirty_pages().is_empty(), "stale dirty pages on a reused arena");
    }

    /// Guard pages: the page on either side of any mapping is unmapped, so
    /// one-past-the-end and one-before accesses fault as `Unmapped` (after
    /// an `OutOfBounds` for ranges straddling the boundary).
    #[test]
    fn guard_pages_fault(seed in 0u64..2000, lens in proptest::collection::vec(1usize..3 * PAGE_SIZE, 1..8)) {
        let mut arena = Arena::new();
        let mut rng = Rng::new(seed);
        for len in lens {
            let base = arena.map(len, &mut rng);
            let (_, actual_len) = arena.region_of(base).unwrap();
            let end = base + actual_len as u64;
            prop_assert!(matches!(
                arena.read_u8(end),
                Err(MemFault::Unmapped { .. })
            ));
            prop_assert!(matches!(
                arena.read_u8(base - 1),
                Err(MemFault::Unmapped { .. })
            ));
            // Straddling the end is OutOfBounds (start is mapped).
            prop_assert!(matches!(
                arena.read_bytes(end - 1, 2),
                Err(MemFault::OutOfBounds { .. })
            ));
        }
    }

    /// Bulk APIs agree with their scalar equivalents.
    #[test]
    fn bulk_apis_match_scalar_semantics(
        seed in 0u64..2000,
        pattern in any::<u32>(),
        len in 1usize..512,
        corrupt_at in 0usize..512,
    ) {
        let mut arena = Arena::new();
        let base = arena.map(PAGE_SIZE, &mut Rng::new(seed));
        arena.fill_pattern_u32(base, len, pattern).unwrap();
        prop_assert_eq!(arena.compare_pattern(base, len, pattern).unwrap(), None);
        // copy_out sees exactly what read_bytes sees.
        let mut buf = vec![0u8; len];
        arena.copy_out(base, &mut buf).unwrap();
        prop_assert_eq!(&buf[..], arena.read_bytes(base, len).unwrap());
        // region_snapshot exposes the same bytes.
        let (snap_base, snap) = arena.region_snapshot(base).unwrap();
        prop_assert_eq!(snap_base, base);
        prop_assert_eq!(&snap[..len], &buf[..]);
        // A single corrupted byte is located exactly.
        if corrupt_at < len {
            let original = arena.read_u8(base + corrupt_at as u64).unwrap();
            arena.write_u8(base + corrupt_at as u64, original ^ 0xFF).unwrap();
            prop_assert_eq!(
                arena.compare_pattern(base, len, pattern).unwrap(),
                Some(corrupt_at)
            );
        }
    }
}
