//! A self-contained, dependency-free stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this crate provides the
//! slice of criterion's API the `bench` crate uses — `criterion_group!` /
//! `criterion_main!`, benchmark groups with `bench_function` /
//! `bench_with_input` / `sample_size`, and `Bencher::iter` — backed by a
//! simple adaptive wall-clock harness:
//!
//! * each sample batches enough iterations to exceed a minimum measurable
//!   duration, then records the per-iteration time;
//! * the reported statistic is the median over samples (robust against
//!   scheduler noise);
//! * results print as a table at process exit and are queryable through
//!   [`Criterion::results`] so benches can persist machine-readable output.

use std::fmt;
use std::time::{Duration, Instant};

/// An opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// `group/function` identifier.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Minimum nanoseconds per iteration — the least-noise statistic,
    /// preferred for machine-readable speedup comparisons.
    pub min_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
}

/// The benchmark driver. One per process, created by [`criterion_main!`].
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// All measurements recorded so far.
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints the result table. Called by [`criterion_main!`].
    pub fn final_summary(&self) {
        println!("\n{:<48} {:>14} {:>10}", "benchmark", "median", "samples");
        for r in &self.results {
            println!(
                "{:<48} {:>14} {:>10}",
                r.id,
                format_ns(r.median_ns),
                r.samples
            );
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named benchmark within a group, e.g. `BenchmarkId::new("capture", 500)`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter into one identifier.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut |b| f(b))
    }

    /// Runs a benchmark that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b| f(b, input))
    }

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        let mut samples = bencher.samples_ns;
        let full_id = format!("{}/{}", self.name, id);
        if samples.is_empty() {
            eprintln!("warning: benchmark {full_id} recorded no samples");
            return self;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        let result = BenchResult {
            id: full_id,
            median_ns: samples[samples.len() / 2],
            min_ns: samples[0],
            samples: samples.len(),
        };
        println!("{:<60} {}", result.id, format_ns(result.median_ns));
        self.criterion.results.push(result);
        self
    }

    /// Ends the group. (Sampling state is per-group already; this exists
    /// for API compatibility.)
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`Bencher::iter`] measures the routine.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

/// `true` when `XT_BENCH_QUICK` is set: every benchmark runs its routine
/// a trivial number of times (one calibration call plus two single-
/// iteration samples). Numbers are meaningless in this mode — it exists so
/// CI can smoke-test that benches still compile, run, and write their
/// `BENCH_*.json` outputs without paying for real measurements.
#[must_use]
pub fn quick_mode() -> bool {
    std::env::var_os("XT_BENCH_QUICK").is_some_and(|v| !v.is_empty() && v != "0")
}

impl Bencher {
    /// Measures `routine`, batching iterations so each sample is long
    /// enough for the clock to resolve.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibration: one warm-up call, timed, decides the batch size.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(2);
        let quick = quick_mode();
        let iters = if quick {
            1
        } else {
            (target.as_nanos() / once.as_nanos()).clamp(1, 100_000) as usize
        };
        let samples = if quick {
            self.sample_size.min(2)
        } else {
            self.sample_size
        };
        self.samples_ns.clear();
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples_ns
                .push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }
}

/// Declares a benchmark group function composed of `fn(&mut Criterion)`
/// targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes every test that touches the environment against every
    /// test that (transitively) reads it through `quick_mode()`:
    /// concurrent getenv/setenv is undefined behavior on glibc.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn quick_mode_caps_samples() {
        let _env = ENV_LOCK.lock().unwrap();
        std::env::set_var("XT_BENCH_QUICK", "1");
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("q");
            g.sample_size(50);
            g.bench_function("slowish", |b| {
                b.iter(|| std::thread::sleep(Duration::from_micros(50)))
            });
            g.finish();
        }
        std::env::remove_var("XT_BENCH_QUICK");
        assert_eq!(c.results()[0].samples, 2, "quick mode must cap samples");
    }

    #[test]
    fn bencher_records_samples() {
        let _env = ENV_LOCK.lock().unwrap();
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(3);
            g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
            g.bench_with_input(BenchmarkId::new("with_input", 7), &7, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert_eq!(c.results().len(), 2);
        assert_eq!(c.results()[0].id, "t/noop");
        assert_eq!(c.results()[1].id, "t/with_input/7");
        assert!(c.results().iter().all(|r| r.median_ns >= 0.0));
    }
}
