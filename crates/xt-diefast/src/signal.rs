//! Error signals raised by DieFast's canary checks.

use std::fmt;

use xt_alloc::{AllocTime, ObjectId};
use xt_arena::Addr;

/// Which check discovered the corruption.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SignalKind {
    /// `malloc` found the canary of the slot it was about to return
    /// corrupted; the slot has been retired (bad object isolation).
    CanaryCorruptedOnAlloc,
    /// `free` found the canary of a physically adjacent freed slot
    /// corrupted — the signature of a buffer overflow from a neighbour.
    CanaryCorruptedOnFree,
}

impl fmt::Display for SignalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalKind::CanaryCorruptedOnAlloc => write!(f, "canary corrupted (alloc check)"),
            SignalKind::CanaryCorruptedOnFree => write!(f, "canary corrupted (free check)"),
        }
    }
}

/// One detected-corruption event.
///
/// A signal is DieFast's output to the wider Exterminator runtime: on
/// receipt, the runtime dumps a heap image and starts error isolation
/// (paper §3.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ErrorSignal {
    /// Which check fired.
    pub kind: SignalKind,
    /// Base address of the corrupted slot.
    pub addr: Addr,
    /// Identity of the slot's most recent occupant.
    pub object_id: ObjectId,
    /// Allocation clock when the corruption was discovered.
    pub clock: AllocTime,
}

impl fmt::Display for ErrorSignal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at {} ({}, {})",
            self.kind, self.addr, self.object_id, self.clock
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let s = ErrorSignal {
            kind: SignalKind::CanaryCorruptedOnAlloc,
            addr: Addr::new(0x1234),
            object_id: ObjectId::from_raw(7),
            clock: AllocTime::from_raw(99),
        };
        let text = s.to_string();
        assert!(text.contains("0x1234"));
        assert!(text.contains("obj#7"));
        assert!(text.contains("t99"));
    }
}
