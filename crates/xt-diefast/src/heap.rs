//! The DieFast heap: DieHard plus canary-based error detection.

use xt_alloc::{AllocTime, FreeOutcome, Heap, HeapError, SiteHash};
use xt_arena::{Addr, Arena, Rng};
use xt_diehard::{DieHardHeap, MiniHeap, SlotRef, SlotState};

use crate::{DieFastConfig, ErrorSignal, SignalKind};

/// The probabilistic debugging allocator of paper Fig. 4.
///
/// Wraps a [`DieHardHeap`] and implements [`Heap`], so workloads cannot tell
/// it apart from any other allocator — except that memory errors now get
/// *noticed*: canary corruption discovered during `malloc`/`free` is
/// recorded as an [`ErrorSignal`] for the runtime to poll via
/// [`DieFastHeap::take_signals`].
#[derive(Debug)]
pub struct DieFastHeap {
    inner: DieHardHeap,
    /// Random canary, low bit set (§3.3 "Random Canaries").
    canary: u32,
    fill_probability: f64,
    zero_fill: bool,
    /// RNG for canary-fill coin flips, independent of placement randomness.
    coin: Rng,
    signals: Vec<ErrorSignal>,
    halt_on_signal: bool,
}

impl DieFastHeap {
    /// Creates a DieFast heap.
    #[must_use]
    pub fn new(config: DieFastConfig) -> Self {
        DieFastHeap::with_arena(config, Arena::new())
    }

    /// Creates a DieFast heap over a donated (typically recycled) address
    /// space — see [`DieHardHeap::with_arena`]. Identical behaviour to
    /// [`DieFastHeap::new`], minus the per-run translation-structure
    /// allocations.
    #[must_use]
    pub fn with_arena(config: DieFastConfig, arena: Arena) -> Self {
        // Independent streams for placement vs. canary decisions: both are
        // derived from the seed, so runs remain reproducible.
        let mut seeder = Rng::new(config.heap.seed ^ 0xD1EF_A57D_1EFA_57D1);
        let canary = seeder.next_u32() | 1;
        let coin = seeder.fork();
        DieFastHeap {
            inner: DieHardHeap::with_arena(config.heap.clone(), arena),
            canary,
            fill_probability: config.fill_probability,
            zero_fill: config.zero_fill,
            coin,
            signals: Vec::new(),
            halt_on_signal: false,
        }
    }

    /// Consumes the wrapper, returning the underlying DieHard heap (from
    /// which [`DieHardHeap::into_arena`] recovers the arena for reuse).
    #[must_use]
    pub fn into_inner(self) -> DieHardHeap {
        self.inner
    }

    /// When enabled, the first error signal stops the run: the next
    /// `malloc` fails with [`HeapError::Breakpoint`] so the runtime can
    /// dump a heap image at the detection point. This is how iterative
    /// mode is "initially invoked via a command-line option that directs
    /// it to stop as soon as it detects an error" (§3.4). Replays disable
    /// it and rely on the malloc breakpoint instead.
    pub fn set_halt_on_signal(&mut self, halt: bool) {
        self.halt_on_signal = halt;
    }

    /// This execution's canary value. Random per seed, low bit always set.
    #[must_use]
    pub fn canary(&self) -> u32 {
        self.canary
    }

    /// The canary fill probability `p`.
    #[must_use]
    pub fn fill_probability(&self) -> f64 {
        self.fill_probability
    }

    /// Drains and returns all pending error signals.
    pub fn take_signals(&mut self) -> Vec<ErrorSignal> {
        std::mem::take(&mut self.signals)
    }

    /// `true` if undelivered signals are pending.
    #[must_use]
    pub fn has_signals(&self) -> bool {
        !self.signals.is_empty()
    }

    /// The wrapped DieHard heap (metadata, miniheaps, history).
    #[must_use]
    pub fn inner(&self) -> &DieHardHeap {
        &self.inner
    }

    /// Arms or disarms the malloc breakpoint (see
    /// [`DieHardHeap::set_breakpoint`]).
    pub fn set_breakpoint(&mut self, at: Option<AllocTime>) {
        self.inner.set_breakpoint(at);
    }

    /// Checks whether the canary bytes of the slot at `loc` are intact.
    ///
    /// The whole slot is compared against the repeating canary pattern in
    /// one bulk word-at-a-time arena operation; any mismatching byte means
    /// an overflow or a dangling write landed here.
    #[must_use]
    pub fn canary_intact(&self, loc: SlotRef) -> bool {
        let mh: &MiniHeap = self.inner.miniheap(loc);
        let addr = mh.slot_addr(loc.slot());
        let size = mh.object_size();
        self.inner
            .arena()
            .compare_pattern(addr, size, self.canary)
            .expect("slot memory is always mapped")
            .is_none()
    }

    fn signal(&mut self, kind: SignalKind, loc: SlotRef) {
        let addr = self.inner.slot_addr(loc);
        let meta = self.inner.meta(loc);
        self.signals.push(ErrorSignal {
            kind,
            addr,
            object_id: meta.object_id,
            clock: self.inner.clock(),
        });
    }

    /// The canary check both `malloc` and `free` perform on a freed,
    /// canaried slot. Returns `true` if the slot was clean.
    fn verify_or_signal(&mut self, loc: SlotRef, kind: SignalKind) -> bool {
        if !self.inner.meta(loc).canaried {
            return true;
        }
        if self.canary_intact(loc) {
            return true;
        }
        self.signal(kind, loc);
        false
    }
}

impl Heap for DieFastHeap {
    /// `diefast_malloc` (Fig. 4): reserve a slot, verify its canary while
    /// the previous occupant's metadata is still intact, and on corruption
    /// retire the slot (*bad object isolation*) and take another — without
    /// consuming a new object id, so ids keep matching across replicas.
    fn malloc(&mut self, size: usize, site: SiteHash) -> Result<Addr, HeapError> {
        if self.halt_on_signal && !self.signals.is_empty() {
            return Err(HeapError::Breakpoint {
                at: self.inner.clock(),
            });
        }
        let mut loc = self.inner.reserve_slot(size)?;
        // "Check if the object wasn't canary-filled or is uncorrupted."
        while self.inner.meta(loc).canaried && !self.canary_intact(loc) {
            // "If not: mark allocated; signal error."
            self.signal(SignalKind::CanaryCorruptedOnAlloc, loc);
            self.inner.retire_reserved(loc);
            loc = self.inner.reserve_slot(size)?;
        }
        let addr = self.inner.commit_slot(loc, size, site);
        if self.zero_fill {
            let slot_size = self.inner.miniheap(loc).object_size();
            self.inner
                .arena_mut()
                .fill(addr, slot_size, 0)
                .expect("slot memory is always mapped");
        }
        Ok(addr)
    }

    /// `diefast_free` (Fig. 4): free, canary-check both physically adjacent
    /// slots, then probabilistically canary the freed object itself.
    fn free(&mut self, ptr: Addr, site: SiteHash) -> FreeOutcome {
        let outcome = self.inner.free(ptr, site);
        if outcome != FreeOutcome::Freed {
            return outcome;
        }
        let loc = self.inner.location_of(ptr).expect("freed address resolves");
        // "After every deallocation, DieFast checks both the preceding and
        // following objects" — if they are free, their canaries must be
        // intact; corruption here is the signature of an overflow from a
        // neighbour, detected immediately upon deallocation.
        let (prev, next) = self.inner.neighbors(loc);
        for neighbor in [prev, next].into_iter().flatten() {
            if self.inner.meta(neighbor).state == SlotState::Free {
                self.verify_or_signal(neighbor, SignalKind::CanaryCorruptedOnFree);
            }
        }
        // "Probabilistically fill with canary."
        if self.coin.chance(self.fill_probability) {
            let mh = self.inner.miniheap(loc);
            let (addr, size) = (mh.slot_addr(loc.slot()), mh.object_size());
            let canary = self.canary;
            self.inner
                .arena_mut()
                .fill_pattern_u32(addr, size, canary)
                .expect("slot memory is always mapped");
            self.inner.set_canaried(loc, true);
        }
        outcome
    }

    fn arena(&self) -> &Arena {
        self.inner.arena()
    }

    fn arena_mut(&mut self) -> &mut Arena {
        self.inner.arena_mut()
    }

    fn clock(&self) -> AllocTime {
        self.inner.clock()
    }

    fn usable_size(&self, ptr: Addr) -> Option<usize> {
        self.inner.usable_size(ptr)
    }

    fn alloc_site_of(&self, ptr: Addr) -> Option<SiteHash> {
        self.inner.alloc_site_of(ptr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_alloc::ObjectId;

    const SITE: SiteHash = SiteHash::from_raw(0x51);

    fn heap(seed: u64) -> DieFastHeap {
        DieFastHeap::new(DieFastConfig::with_seed(seed))
    }

    #[test]
    fn canary_has_low_bit_set_and_varies_by_seed() {
        let canaries: Vec<u32> = (0..8).map(|s| heap(s).canary()).collect();
        assert!(canaries.iter().all(|c| c & 1 == 1));
        let mut unique = canaries.clone();
        unique.sort_unstable();
        unique.dedup();
        assert!(unique.len() >= 7, "canaries should differ across seeds");
    }

    #[test]
    fn allocations_are_zero_filled() {
        let mut h = heap(1);
        let p = h.malloc(64, SITE).unwrap();
        assert_eq!(h.arena().read_bytes(p, 64).unwrap(), &[0u8; 64][..]);
    }

    #[test]
    fn freed_objects_are_canaried_at_p_one() {
        let mut h = heap(2);
        let p = h.malloc(32, SITE).unwrap();
        h.free(p, SITE);
        let loc = h.inner().location_of(p).unwrap();
        assert!(h.inner().meta(loc).canaried);
        assert!(h.canary_intact(loc));
        assert_eq!(h.arena().read_u32(p).unwrap(), h.canary());
    }

    #[test]
    fn fill_probability_zero_never_canaries() {
        let mut h = DieFastHeap::new(DieFastConfig::with_seed(3).fill_probability(0.0));
        for _ in 0..32 {
            let p = h.malloc(16, SITE).unwrap();
            h.free(p, SITE);
            let loc = h.inner().location_of(p).unwrap();
            assert!(!h.inner().meta(loc).canaried);
        }
    }

    #[test]
    fn fill_probability_half_is_a_coin() {
        let mut h = DieFastHeap::new(DieFastConfig::with_seed(4).fill_probability(0.5));
        let mut canaried = 0;
        for _ in 0..400 {
            let p = h.malloc(16, SITE).unwrap();
            let loc = h.inner().location_of(p).unwrap();
            h.free(p, SITE);
            if h.inner().meta(loc).canaried {
                canaried += 1;
            }
        }
        assert!((140..260).contains(&canaried), "canaried {canaried}/400");
    }

    #[test]
    fn overflow_into_canary_detected_on_realloc() {
        // Free an object (canarying it), corrupt the canary directly, then
        // allocate until the slot is probed again: DieFast must signal and
        // retire the slot.
        let mut h = heap(5);
        let p = h.malloc(16, SITE).unwrap();
        h.free(p, SITE);
        h.arena_mut().write_u8(p + 3, 0xEE).unwrap();
        let mut signalled = false;
        for _ in 0..200 {
            let q = h.malloc(16, SITE).unwrap();
            assert_ne!(q, p, "corrupt slot must never be handed out");
            if h.has_signals() {
                signalled = true;
                break;
            }
        }
        assert!(signalled, "corruption went unnoticed for 200 allocations");
        let signals = h.take_signals();
        assert_eq!(signals[0].kind, SignalKind::CanaryCorruptedOnAlloc);
        assert_eq!(signals[0].addr, p);
        // Evidence is preserved: the corrupted byte is still there.
        assert_eq!(h.arena().read_u8(p + 3).unwrap(), 0xEE);
        let loc = h.inner().location_of(p).unwrap();
        assert_eq!(h.inner().meta(loc).state, SlotState::Bad);
    }

    #[test]
    fn bad_object_isolation_preserves_object_ids() {
        // Detection plus retry must not consume an object id: allocate two
        // heaps with the same workload, corrupt a canary in one of them, and
        // check ids still line up afterwards.
        let mut clean = heap(6);
        let mut dirty = heap(6);
        let p = dirty.malloc(16, SITE).unwrap();
        let pc = clean.malloc(16, SITE).unwrap();
        dirty.free(p, SITE);
        clean.free(pc, SITE);
        dirty.arena_mut().write_u8(p, 0x77).unwrap();
        for _ in 0..100 {
            let a = clean.malloc(16, SITE).unwrap();
            let b = dirty.malloc(16, SITE).unwrap();
            let ia = clean
                .inner()
                .meta(clean.inner().location_of(a).unwrap())
                .object_id;
            let ib = dirty
                .inner()
                .meta(dirty.inner().location_of(b).unwrap())
                .object_id;
            assert_eq!(ia, ib, "object ids diverged after bad-object isolation");
        }
    }

    #[test]
    fn neighbor_corruption_detected_on_free() {
        // Allocate three logically adjacent slots, free the middle one
        // (canary), overflow into it from the left neighbour, then free the
        // left neighbour: the free-time neighbour check must fire.
        let mut h = heap(7);
        // Allocate many objects, find three physically adjacent live ones.
        let ptrs: Vec<Addr> = (0..24).map(|_| h.malloc(16, SITE).unwrap()).collect();
        let mut sorted = ptrs.clone();
        sorted.sort();
        let triple = sorted
            .windows(3)
            .find(|w| w[1] - w[0] == 16 && w[2] - w[1] == 16)
            .map(|w| (w[0], w[1], w[2]));
        let Some((left, middle, _right)) = triple else {
            // Randomized layout produced no adjacent triple; extremely
            // unlikely at 50% occupancy of a 32+ slot miniheap.
            panic!("no physically adjacent triple found");
        };
        h.free(middle, SITE);
        // Overflow 4 bytes out of `left` into `middle`'s canary.
        h.arena_mut().write_u32(left + 16, 0x4242_4242).unwrap();
        h.free(left, SITE);
        let signals = h.take_signals();
        assert!(
            signals
                .iter()
                .any(|s| s.kind == SignalKind::CanaryCorruptedOnFree && s.addr == middle),
            "free-time neighbour check missed the overflow: {signals:?}"
        );
    }

    #[test]
    fn no_false_positives_on_clean_churn() {
        let mut h = heap(8);
        let mut rng = Rng::new(99);
        let mut live: Vec<(Addr, usize)> = Vec::new();
        for _ in 0..3000 {
            if !live.is_empty() && rng.chance(0.5) {
                let (p, size) = live.swap_remove(rng.below_usize(live.len()));
                // Write the object fully before freeing: canary collisions
                // with real data must not fire.
                h.arena_mut().fill(p, size, rng.next_u32() as u8).unwrap();
                h.free(p, SITE);
            } else {
                let size = 16 + rng.below_usize(100);
                let p = h.malloc(size, SITE).unwrap();
                live.push((p, size));
            }
        }
        assert!(
            !h.has_signals(),
            "clean workload raised signals: {:?}",
            h.take_signals()
        );
    }

    #[test]
    fn dangling_write_detected_when_slot_reused() {
        let mut h = heap(9);
        let p = h.malloc(48, SITE).unwrap();
        h.free(p, SITE);
        // Dangling write through the stale pointer corrupts the canary.
        h.arena_mut().write_u64(p + 8, 0x1bad_b002).unwrap();
        // Sooner or later the allocator probes that slot.
        let mut detected = false;
        for _ in 0..200 {
            h.malloc(48, SITE).unwrap();
            if h.has_signals() {
                detected = true;
                break;
            }
        }
        assert!(detected, "dangling overwrite never detected");
        let s = h.take_signals();
        assert_eq!(s[0].object_id, ObjectId::from_raw(1));
    }

    #[test]
    fn breakpoint_passthrough() {
        let mut h = heap(10);
        h.set_breakpoint(Some(AllocTime::from_raw(2)));
        h.malloc(16, SITE).unwrap();
        h.malloc(16, SITE).unwrap();
        assert!(matches!(
            h.malloc(16, SITE),
            Err(HeapError::Breakpoint { .. })
        ));
    }

    #[test]
    fn halt_on_signal_stops_at_detection() {
        let mut h = heap(20);
        // Corrupt the canaries of several freed slots (guaranteed byte
        // mismatch), so a random probe detects one quickly.
        let corrupt = h.canary().to_le_bytes()[0] ^ 0xFF;
        let slots: Vec<Addr> = (0..8).map(|_| h.malloc(16, SITE).unwrap()).collect();
        for p in slots {
            h.free(p, SITE);
            h.arena_mut().write_u8(p, corrupt).unwrap();
        }
        h.take_signals(); // discard detections from the setup itself
        h.set_halt_on_signal(true);
        // Allocate until detection; the malloc after it must halt.
        let mut halted = false;
        for _ in 0..500 {
            match h.malloc(16, SITE) {
                Ok(_) => {}
                Err(HeapError::Breakpoint { .. }) => {
                    halted = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(halted, "halt_on_signal never fired");
        assert!(h.has_signals());
        // Disabling it lets execution continue.
        h.set_halt_on_signal(false);
        h.malloc(16, SITE).unwrap();
    }

    #[test]
    fn same_seed_same_canary_and_layout() {
        let mut a = heap(11);
        let mut b = heap(11);
        assert_eq!(a.canary(), b.canary());
        for _ in 0..32 {
            assert_eq!(a.malloc(16, SITE).unwrap(), b.malloc(16, SITE).unwrap());
        }
    }
}
