//! DieFast: the probabilistic debugging allocator (paper §3.3, Fig. 4).
//!
//! DieFast keeps DieHard's randomized, over-provisioned layout and extends
//! the allocation paths to *detect* errors instead of merely tolerating
//! them:
//!
//! * **Implicit fence-posts.** No space is spent on padding: the freed slots
//!   that over-provisioning scatters between live objects act as
//!   fence-posts (`E(M−1)` freed slots separate consecutive live objects).
//! * **Random canaries.** Freed slots are filled with a random 32-bit value
//!   chosen at startup with the low bit set — dereferencing it faults on an
//!   alignment-checking machine, and a fixed data value collides with it
//!   with probability only `2^-31`.
//! * **Probabilistic fence-posts.** In cumulative mode, freed slots are
//!   canaried only with probability `p` (default 1/2), turning every run
//!   into a Bernoulli trial that cumulative isolation (§5.2) can correlate
//!   with failures. Outside cumulative mode `p = 1`.
//! * **Probabilistic error detection.** Every `malloc` verifies the canary
//!   of the slot it returns; every `free` checks the two physically
//!   adjacent slots. Corruption raises an [`ErrorSignal`] and triggers *bad
//!   object isolation*: the corrupt slot is retired (never reused) so its
//!   contents survive as evidence for the error isolator.
//!
//! # Example
//!
//! ```
//! use xt_alloc::{Heap, SiteHash};
//! use xt_diefast::{DieFastConfig, DieFastHeap};
//!
//! # fn main() -> Result<(), xt_alloc::HeapError> {
//! let mut heap = DieFastHeap::new(DieFastConfig::with_seed(7));
//! let site = SiteHash::from_raw(1);
//! let p = heap.malloc(32, site)?;
//! heap.free(p, site);
//! // The freed slot is now filled with the heap's random canary.
//! let canary = heap.canary();
//! assert_eq!(heap.arena().read_u32(p).unwrap(), canary);
//! assert!(heap.take_signals().is_empty());
//! # Ok(())
//! # }
//! ```

mod config;
mod heap;
mod signal;

pub use config::DieFastConfig;
pub use heap::DieFastHeap;
pub use signal::{ErrorSignal, SignalKind};
