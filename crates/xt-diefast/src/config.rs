//! DieFast configuration.

use xt_diehard::DieHardConfig;

/// Configuration for a [`DieFastHeap`](crate::DieFastHeap).
///
/// # Example
///
/// ```
/// use xt_diefast::DieFastConfig;
///
/// // Cumulative-mode setup: canary freed objects half the time.
/// let config = DieFastConfig::with_seed(1).fill_probability(0.5);
/// assert_eq!(config.fill_probability, 0.5);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DieFastConfig {
    /// The underlying DieHard heap configuration.
    pub heap: DieHardConfig,
    /// Probability `p` of filling a freed object with canaries. The paper
    /// uses `p = 1` outside cumulative mode and `p = 1/2` inside it (§5.2).
    pub fill_probability: f64,
    /// Zero-fill allocated objects. Exterminator always does this: it
    /// cannot repair uninitialized reads, so it makes them deterministic
    /// (§2.1).
    pub zero_fill: bool,
}

impl DieFastConfig {
    /// Paper-default configuration (iterative/replicated modes): always
    /// canary freed objects, zero allocations, `M = 2`.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        DieFastConfig {
            heap: DieHardConfig::with_seed(seed),
            fill_probability: 1.0,
            zero_fill: true,
        }
    }

    /// Cumulative-mode configuration: `p = 1/2` and allocation-history
    /// tracking enabled (the per-run summaries need it).
    #[must_use]
    pub fn cumulative_with_seed(seed: u64) -> Self {
        DieFastConfig {
            heap: DieHardConfig::with_seed(seed).track_history(true),
            fill_probability: 0.5,
            zero_fill: true,
        }
    }

    /// Sets the canary fill probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    #[must_use]
    pub fn fill_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.fill_probability = p;
        self
    }

    /// Sets the underlying heap configuration.
    #[must_use]
    pub fn heap(mut self, heap: DieHardConfig) -> Self {
        self.heap = heap;
        self
    }

    /// Enables or disables zero-filling of allocations.
    #[must_use]
    pub fn zero_fill(mut self, on: bool) -> Self {
        self.zero_fill = on;
        self
    }
}

impl Default for DieFastConfig {
    fn default() -> Self {
        DieFastConfig::with_seed(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_always_canary() {
        let c = DieFastConfig::default();
        assert_eq!(c.fill_probability, 1.0);
        assert!(c.zero_fill);
        assert!(!c.heap.track_history);
    }

    #[test]
    fn cumulative_preset() {
        let c = DieFastConfig::cumulative_with_seed(3);
        assert_eq!(c.fill_probability, 0.5);
        assert!(c.heap.track_history);
        assert_eq!(c.heap.seed, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_probability() {
        let _ = DieFastConfig::default().fill_probability(1.5);
    }
}
