//! The analytical bounds of paper §4 (Theorems 1–3).
//!
//! These functions exist so tests and the `exp_theorems` experiment can
//! check the implementation's *measured* false-positive/false-negative
//! rates against the paper's *proved* bounds.

/// Theorem 1: upper bound on the probability that a buffer overflow
/// overwrites the same `s` objects identically in all `k` heap images of a
/// heap with `h` objects:
///
/// `P ≤ (1/2)^k × (1/(h−s))^k`
///
/// This is what justifies classifying *identical* overwrites as dangling
/// pointer errors rather than overflows (§4.2).
///
/// # Panics
///
/// Panics if `h <= s` (the overflow string cannot exceed the heap).
#[must_use]
pub fn p_identical_overflow(k: u32, s: f64, h: f64) -> f64 {
    assert!(h > s, "heap must be larger than the overflow string");
    (0.5f64).powi(k as i32) * (1.0 / (h - s)).powi(k as i32)
}

/// Theorem 2: upper bound on the probability that an overflow of `b` bytes
/// escapes detection by canary comparison across `k` images of heaps with
/// multiplier `m`:
///
/// `P ≤ (1 − (m−1)/(2m))^k + (1/256)^b`
///
/// The first term is the chance the overflow never lands on a canary; the
/// second is the chance it matches the canary byte-for-byte.
///
/// # Panics
///
/// Panics if `m < 1`.
#[must_use]
pub fn p_missed_overflow(m: f64, k: u32, b: u32) -> f64 {
    assert!(m >= 1.0, "heap multiplier must be at least 1");
    let landing_miss = 1.0 - (m - 1.0) / (2.0 * m);
    landing_miss.powi(k as i32) + (1.0f64 / 256.0).powi(b as i32)
}

/// Theorem 3: expected number of *spurious* culprit candidates at a fixed
/// distance `δ` from a victim across `k` heap images of heaps with `h`
/// objects:
///
/// `E = 1/(h−1)^(k−2)`
///
/// One image leaves `h−1` candidates; each further image divides the
/// expectation by `h−1`. Three images make false culprits vanishingly rare.
///
/// # Panics
///
/// Panics if `h < 2`.
#[must_use]
pub fn expected_culprits(h: f64, k: u32) -> f64 {
    assert!(h >= 2.0, "need at least two objects");
    (h - 1.0).powi(2 - k as i32)
}

/// The culprit confidence score of §4.1: `1 − (1/256)^s` for a total
/// detected overflow-string length of `s` bytes.
#[must_use]
pub fn culprit_score(s: u64) -> f64 {
    1.0 - (1.0f64 / 256.0).powi(s.min(1000) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_overflow_shrinks_with_images() {
        let p1 = p_identical_overflow(1, 4.0, 100.0);
        let p2 = p_identical_overflow(2, 4.0, 100.0);
        let p3 = p_identical_overflow(3, 4.0, 100.0);
        assert!(p2 < p1 && p3 < p2);
        // k=2, h=100, s=4: (1/4) * (1/96)^2
        let expected = 0.25 * (1.0f64 / 96.0).powi(2);
        assert!((p2 - expected).abs() < 1e-12);
    }

    #[test]
    fn missed_overflow_matches_paper_figure() {
        // §7.2: for three images and M=2, the bound on missing an overflow
        // is about 42% (landing term (3/4)^3 ≈ 0.42).
        let p = p_missed_overflow(2.0, 3, 4);
        assert!((p - 0.75f64.powi(3)).abs() < 1e-6, "p = {p}");
        assert!(p < 0.43 && p > 0.42);
    }

    #[test]
    fn missed_overflow_decreases_with_m_and_k() {
        assert!(p_missed_overflow(4.0, 3, 8) < p_missed_overflow(2.0, 3, 8));
        assert!(p_missed_overflow(2.0, 6, 8) < p_missed_overflow(2.0, 3, 8));
    }

    #[test]
    fn culprit_counts_match_paper_narrative() {
        // "With only one heap image, all (H−1) objects are potential
        // culprits, but one additional image reduces the expected number of
        // culprits for any victim to just 1."
        assert_eq!(expected_culprits(101.0, 1), 100.0);
        assert_eq!(expected_culprits(101.0, 2), 1.0);
        assert!((expected_culprits(101.0, 3) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn score_grows_with_string_length() {
        assert!(culprit_score(0) == 0.0);
        assert!(culprit_score(1) > 0.99);
        assert!(culprit_score(4) > culprit_score(1));
        assert!(culprit_score(4) <= 1.0);
    }

    #[test]
    #[should_panic(expected = "larger than")]
    fn identical_overflow_validates() {
        let _ = p_identical_overflow(2, 10.0, 10.0);
    }
}
