//! Exterminator's probabilistic error isolation (paper §4 and §5).
//!
//! Two algorithm families share this crate:
//!
//! * [`iterative`] — for the iterative and replicated modes (§4): diff `k`
//!   independently randomized heap images of the *same logical execution*,
//!   identify overflow victims (corrupted canaries and live-object
//!   discrepancies), search for culprits at a constant offset `δ`, and
//!   classify identical overwrites of freed objects as dangling-pointer
//!   errors. Theorems 1–3 bound the false positive/negative rates;
//!   [`theory`] implements the formulas so experiments can compare
//!   measured rates against the analytical bounds.
//! * [`cumulative`] — for cumulative mode (§5): no two runs need be
//!   identical. Each run is reduced to per-allocation-site summary
//!   statistics (a few hundred bytes); a Bayesian hypothesis test flags
//!   sites whose objects sit "behind" observed corruption (overflows) or
//!   whose canarying correlates with failure (dangling pointers) more
//!   often than chance predicts. [`evidence`] holds the same test in
//!   incremental, *mergeable* running-product form — the shape a
//!   fleet-scale aggregation service (`xt-fleet`) needs, where evidence
//!   from thousands of clients is folded into sharded state in arbitrary
//!   order.
//!
//! Both families produce an [`IsolationReport`] which converts into the
//! runtime [`PatchTable`](xt_patch::PatchTable) consumed by the correcting
//! allocator.

pub mod cumulative;
pub mod evidence;
pub mod iterative;
mod report;
pub mod theory;

pub use evidence::{EvidenceTable, SiteEvidence};
pub use report::{DanglingReport, IsolationError, IsolationReport, OverflowReport};
