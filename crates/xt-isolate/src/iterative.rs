//! Iterative/replicated-mode error isolation (paper §4).
//!
//! Input: `k ≥ 2` heap images of the *same logical execution* over
//! independently randomized heaps (either replayed runs in iterative mode
//! or live replicas in replicated mode). Because object ids are allocation
//! ordinals, the same logical object carries the same id in every image
//! while living at an independently random address — corruption therefore
//! shows up as *disagreement between images*, and the randomization turns
//! culprit identification into an intersection problem (Theorem 3).
//!
//! The algorithm:
//!
//! 1. **Dangling classification** (§4.2): a freed, canaried object
//!    overwritten with *identical* bytes in every image is a dangling
//!    pointer overwrite — Theorem 1 makes an overflow doing this
//!    vanishingly unlikely.
//! 2. **Victim detection** (§4.1): remaining corruption evidence is either
//!    a corrupted canary in freed space or a live object whose contents
//!    disagree with the other images after filtering out legitimate
//!    differences (pointer-equivalent words and words that differ in
//!    *every* image, such as pids or timestamps).
//! 3. **Culprit search**: for each piece of corruption, every object at a
//!    lower address in the same miniheap is a candidate culprit at offset
//!    `δ = corruption_start − culprit_base`. Deterministic overflows write
//!    at a fixed `δ`, so true culprits recur across images while spurious
//!    ones die off geometrically. Candidates contradicted by an *intact*
//!    canary at `culprit + δ` in some image are refuted outright.
//! 4. **Scoring** (§4.1): surviving culprits are scored
//!    `1 − (1/256)^S` by total overflow-string length `S`.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use xt_alloc::ObjectId;
use xt_arena::Addr;
use xt_diehard::SlotState;
use xt_image::{CanaryCorruption, HeapImage, ObjectRef};

use crate::theory::culprit_score;
use crate::{DanglingReport, IsolationError, IsolationReport, OverflowReport};

/// Tuning knobs for iterative isolation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IsolateOptions {
    /// Minimum number of images in which a culprit candidate must be
    /// positively confirmed (the paper effectively requires corruption to
    /// recur; 2 is the lowest value at which Theorem 3 applies).
    pub min_confirmations: usize,
}

impl Default for IsolateOptions {
    fn default() -> Self {
        IsolateOptions {
            min_confirmations: 2,
        }
    }
}

/// One piece of corruption evidence in one image.
#[derive(Clone, Copy, Debug)]
struct Corruption {
    image: usize,
    miniheap: usize,
    /// First corrupted byte.
    start: Addr,
    /// One past the last corrupted byte.
    end: Addr,
    /// Base address of the corrupted slot.
    victim_base: Addr,
}

/// Runs iterative isolation over `images` with default options.
///
/// # Errors
///
/// See [`isolate_with`].
pub fn isolate(images: &[HeapImage]) -> Result<IsolationReport, IsolationError> {
    isolate_with(images, IsolateOptions::default())
}

/// Runs iterative isolation over `images`.
///
/// # Errors
///
/// * [`IsolationError::NotEnoughImages`] for fewer than two images.
/// * [`IsolationError::MismatchedImages`] if the images' heap
///   configurations differ.
pub fn isolate_with(
    images: &[HeapImage],
    options: IsolateOptions,
) -> Result<IsolationReport, IsolationError> {
    if images.len() < 2 {
        return Err(IsolationError::NotEnoughImages { got: images.len() });
    }
    if images
        .windows(2)
        .any(|w| w[0].multiplier != w[1].multiplier)
    {
        return Err(IsolationError::MismatchedImages);
    }

    let canary_corruptions: Vec<Vec<CanaryCorruption>> = images
        .iter()
        .map(HeapImage::scan_canary_corruptions)
        .collect();

    let (dangling, dangling_ids) = classify_dangling(images, &canary_corruptions);
    let corruptions = collect_corruptions(images, &canary_corruptions, &dangling_ids);
    let overflows = find_culprits(images, &corruptions, &canary_corruptions, options);

    Ok(IsolationReport {
        overflows,
        dangling,
    })
}

/// §4.2: freed, canaried objects overwritten with identical values across
/// all images are dangling-pointer overwrites.
fn classify_dangling(
    images: &[HeapImage],
    canary_corruptions: &[Vec<CanaryCorruption>],
) -> (Vec<DanglingReport>, HashSet<ObjectId>) {
    let mut reports = Vec::new();
    let mut ids = HashSet::new();
    let last_alloc_time = images
        .iter()
        .map(|i| i.clock)
        .max()
        .expect("at least one image");

    'candidates: for c in &canary_corruptions[0] {
        let id = c.object_id;
        // Collect this object's slot in every image; it must be freed (or
        // retired as bad evidence) and canaried everywhere.
        let mut slots = Vec::with_capacity(images.len());
        for img in images {
            let Some(r) = img.find_object(id) else {
                continue 'candidates;
            };
            let slot = img.slot(r);
            if slot.state == SlotState::Live || !slot.canaried {
                continue 'candidates;
            }
            slots.push(slot);
        }
        // Union of corrupted byte offsets across images.
        let mut union: HashSet<usize> = HashSet::new();
        for (img, slot) in images.iter().zip(&slots) {
            let pattern = img.canary.to_le_bytes();
            for (i, &b) in slot.data.iter().enumerate() {
                if b != pattern[i % 4] {
                    union.insert(i);
                }
            }
        }
        if union.is_empty() {
            continue;
        }
        // "Overwritten with identical values across multiple heap images":
        // every image agrees byte-for-byte on the overwritten region.
        // xt-analyze: allow(hash-iter) -- ∀-reduction to a bool; iteration order cannot change the result
        let identical = union.iter().all(|&off| {
            let first = slots[0].data[off];
            slots.iter().all(|s| s.data[off] == first)
        });
        if !identical {
            continue;
        }
        let s0 = slots[0];
        reports.push(DanglingReport {
            object_id: id,
            alloc_site: s0.alloc_site,
            free_site: s0.free_site,
            free_time: s0.free_time,
            last_alloc_time,
            deferral: DanglingReport::paper_deferral(s0.free_time, last_alloc_time),
        });
        ids.insert(id);
    }
    (reports, ids)
}

/// §4.1: gather all overflow corruption evidence — corrupted canaries plus
/// live-object discrepancies.
fn collect_corruptions(
    images: &[HeapImage],
    canary_corruptions: &[Vec<CanaryCorruption>],
    dangling_ids: &HashSet<ObjectId>,
) -> Vec<Corruption> {
    let mut out = Vec::new();
    for (i, corruptions) in canary_corruptions.iter().enumerate() {
        for c in corruptions {
            if dangling_ids.contains(&c.object_id) {
                continue;
            }
            out.push(Corruption {
                image: i,
                miniheap: c.slot.miniheap,
                start: c.addr + c.first_bad as u64,
                end: c.addr + c.end_bad as u64,
                victim_base: c.addr,
            });
        }
    }
    out.extend(diff_live_objects(images));
    out
}

/// Word-by-word comparison of live objects across images, with the paper's
/// filters: canary-fill differences cannot arise here (only live objects
/// are compared), pointer-equivalent words are equal, and words that differ
/// in *every* image are legitimately different (pids, handles, ...).
fn diff_live_objects(images: &[HeapImage]) -> Vec<Corruption> {
    let k = images.len();
    let mut out = Vec::new();
    for (r0, s0) in images[0].live_objects() {
        let id = s0.object_id;
        let mut refs: Vec<ObjectRef> = Vec::with_capacity(k);
        refs.push(r0);
        let mut all_live = true;
        for img in &images[1..] {
            match img.find_object(id) {
                Some(r) if img.slot(r).state == SlotState::Live => refs.push(r),
                _ => {
                    all_live = false;
                    break;
                }
            }
        }
        if !all_live {
            continue;
        }
        let slots: Vec<_> = images
            .iter()
            .zip(&refs)
            .map(|(img, &r)| img.slot(r))
            .collect();
        let size = slots.iter().map(|s| s.data.len()).min().unwrap_or(0);
        // Per-image corrupt byte offsets for this object.
        let mut corrupt: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut offset = 0;
        while offset < size {
            let wlen = 8.min(size - offset);
            let words: Vec<&[u8]> = slots
                .iter()
                .map(|s| &s.data[offset..offset + wlen])
                .collect();
            if words.iter().all(|w| *w == words[0]) {
                offset += wlen;
                continue;
            }
            if wlen == 8 && pointer_equivalent(images, &words) {
                offset += wlen;
                continue;
            }
            if all_pairwise_distinct(&words) {
                // "Any word that differs at the same position across the
                // heaps ... is legitimately different."
                offset += wlen;
                continue;
            }
            // Majority vote: images holding a minority value are corrupted.
            if let Some(majority) = majority_value(&words) {
                for (i, w) in words.iter().enumerate() {
                    if *w != majority {
                        for (b, (&got, &want)) in w.iter().zip(majority).enumerate() {
                            if got != want {
                                corrupt[i].push(offset + b);
                            }
                        }
                    }
                }
            }
            offset += wlen;
        }
        for (i, offsets) in corrupt.into_iter().enumerate() {
            if offsets.is_empty() {
                continue;
            }
            let base = images[i].slot_addr(refs[i]);
            for (start, end) in merge_ranges(&offsets) {
                out.push(Corruption {
                    image: i,
                    miniheap: refs[i].miniheap,
                    start: base + start as u64,
                    end: base + end as u64,
                    victim_base: base,
                });
            }
        }
    }
    out
}

/// True if every image's word, read as a 64-bit address, resolves to the
/// same logical object at the same offset (§4.1's pointer identification).
fn pointer_equivalent(images: &[HeapImage], words: &[&[u8]]) -> bool {
    let mut target: Option<(ObjectId, u64)> = None;
    for (img, w) in images.iter().zip(words) {
        let raw = u64::from_le_bytes([w[0], w[1], w[2], w[3], w[4], w[5], w[6], w[7]]);
        let Some(hit) = img.resolve_addr(Addr::new(raw)) else {
            return false;
        };
        let key = (hit.object_id, hit.offset);
        match target {
            None => target = Some(key),
            Some(t) if t == key => {}
            Some(_) => return false,
        }
    }
    true
}

fn all_pairwise_distinct(words: &[&[u8]]) -> bool {
    for (i, a) in words.iter().enumerate() {
        for b in &words[i + 1..] {
            if a == b {
                return false;
            }
        }
    }
    true
}

/// The strictly most common word value, if any.
fn majority_value<'a>(words: &[&'a [u8]]) -> Option<&'a [u8]> {
    let mut counts: HashMap<&[u8], usize> = HashMap::new();
    for w in words {
        *counts.entry(w).or_insert(0) += 1;
    }
    // xt-analyze: allow(hash-iter) -- a tie at max implies no strict majority, so the filter below returns None regardless of which tied entry max_by_key saw first
    let (&value, &count) = counts.iter().max_by_key(|(_, &c)| c)?;
    (2 * count > words.len()).then_some(value)
}

/// Merges sorted byte offsets into contiguous `[start, end)` ranges.
fn merge_ranges(offsets: &[usize]) -> Vec<(usize, usize)> {
    let mut out: Vec<(usize, usize)> = Vec::new();
    for &off in offsets {
        match out.last_mut() {
            Some((_, end)) if *end == off => *end += 1,
            _ => out.push((off, off + 1)),
        }
    }
    out
}

#[derive(Clone, Copy, Debug, Default)]
struct Evidence {
    corrupt_bytes: u64,
    extent: u64,
}

/// §4.1 culprit identification: intersect `(culprit, δ)` candidates across
/// images, refute candidates contradicted by intact canaries, and score
/// the survivors.
fn find_culprits(
    images: &[HeapImage],
    corruptions: &[Corruption],
    canary_corruptions: &[Vec<CanaryCorruption>],
    options: IsolateOptions,
) -> Vec<OverflowReport> {
    let k = images.len();
    // Per-image candidate maps: (culprit id, δ) → evidence.
    let mut per_image: Vec<HashMap<(ObjectId, u64), Evidence>> = vec![HashMap::new(); k];
    for c in corruptions {
        let img = &images[c.image];
        let mh = &img.miniheaps[c.miniheap];
        for (slot_idx, slot) in mh.slots.iter().enumerate() {
            let slot_addr = mh.slot_addr(slot_idx);
            if slot_addr >= c.victim_base || !slot.ever_used {
                continue;
            }
            let delta = c.start - slot_addr;
            let entry = per_image[c.image]
                .entry((slot.object_id, delta))
                .or_default();
            entry.corrupt_bytes += c.end - c.start;
            entry.extent = entry.extent.max(c.end - slot_addr);
        }
    }

    // Fast lookup: is this slot's canary corrupted in image i?
    let corrupted_slots: Vec<HashSet<ObjectRef>> = canary_corruptions
        .iter()
        .map(|cs| cs.iter().map(|c| c.slot).collect())
        .collect();

    // Ordered so the merge loop below visits keys deterministically.
    let mut all_keys: BTreeSet<(ObjectId, u64)> = BTreeSet::new();
    for m in &per_image {
        // xt-analyze: allow(hash-iter) -- keys drain into an ordered set; per-map iteration order is erased
        all_keys.extend(m.keys().copied());
    }

    let mut merged: BTreeMap<ObjectId, Evidence> = BTreeMap::new();
    'keys: for key in all_keys {
        let (culprit, delta) = key;
        let mut confirmations = 0;
        let mut evidence = Evidence::default();
        for (i, img) in images.iter().enumerate() {
            if let Some(e) = per_image[i].get(&key) {
                confirmations += 1;
                evidence.corrupt_bytes += e.corrupt_bytes;
                evidence.extent = evidence.extent.max(e.extent);
                continue;
            }
            // Not confirmed here: check whether this image *refutes* the
            // candidate — an intact canary at culprit+δ where a
            // deterministic overflow must have written.
            let Some(cr) = img.find_object(culprit) else {
                continue;
            };
            let target = img.slot_addr(cr) + delta;
            let Some(hit) = img.resolve_addr(target) else {
                continue;
            };
            let slot = img.slot(hit.slot);
            if slot.state != SlotState::Live
                && slot.canaried
                && !corrupted_slots[i].contains(&hit.slot)
            {
                continue 'keys; // refuted
            }
        }
        if confirmations < options.min_confirmations.min(k) {
            continue;
        }
        let e = merged.entry(culprit).or_default();
        e.corrupt_bytes += evidence.corrupt_bytes;
        e.extent = e.extent.max(evidence.extent);
    }

    let mut reports: Vec<OverflowReport> = merged
        .into_iter()
        .filter_map(|(culprit, e)| {
            let r = images[0].find_object(culprit)?;
            let slot = images[0].slot(r);
            let pad = e.extent.saturating_sub(u64::from(slot.requested));
            Some(OverflowReport {
                culprit_id: culprit,
                alloc_site: slot.alloc_site,
                requested: slot.requested,
                max_extent: e.extent,
                pad: u32::try_from(pad).unwrap_or(u32::MAX),
                score: culprit_score(e.corrupt_bytes),
                evidence_bytes: e.corrupt_bytes,
            })
        })
        .collect();
    reports.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.evidence_bytes.cmp(&a.evidence_bytes))
    });
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_alloc::{AllocTime, Heap, SiteHash};
    use xt_diefast::{DieFastConfig, DieFastHeap};

    const SITE_A: SiteHash = SiteHash::from_raw(0xAAAA);
    const SITE_B: SiteHash = SiteHash::from_raw(0xBBBB);
    const FREE_SITE: SiteHash = SiteHash::from_raw(0xFFFF);

    /// A deterministic scripted run with realistic churn: several
    /// generations of allocation and deallocation so that most free slots
    /// have hosted an object (and are therefore canaried) — the steady
    /// state Theorem 2's detection probability assumes. Returns the heap
    /// and the pointers of the *surviving* first-generation objects,
    /// indexed by allocation order.
    fn scripted_heap(seed: u64) -> (DieFastHeap, Vec<Addr>) {
        let mut h = DieFastHeap::new(DieFastConfig::with_seed(seed));
        let mut ptrs = Vec::new();
        for i in 0..60u64 {
            let site = if i % 2 == 0 { SITE_A } else { SITE_B };
            let p = h.malloc(16, site).unwrap();
            h.arena_mut().write_u64(p, 0x1000 + i).unwrap();
            h.arena_mut().write_u64(p + 8, 0x2000 + i).unwrap();
            ptrs.push(p);
        }
        // Churn: two generations of transient objects, so freed space
        // (DieFast's implicit fence-posts) covers most of the heap.
        for _ in 0..2 {
            let transient: Vec<Addr> = (0..40).map(|_| h.malloc(16, SITE_B).unwrap()).collect();
            for p in transient {
                h.free(p, FREE_SITE);
            }
        }
        // Free every third first-generation object as well.
        for i in (0..60).step_by(3) {
            h.free(ptrs[i], FREE_SITE);
        }
        (h, ptrs)
    }

    /// True if the slot physically after `ptr`'s slot is a canaried free
    /// slot — i.e. an overflow out of `ptr` will land on a fence-post.
    fn next_slot_canaried(h: &DieFastHeap, ptr: Addr) -> bool {
        let loc = h.inner().location_of(ptr).unwrap();
        let (_, next) = h.inner().neighbors(loc);
        next.is_some_and(|n| {
            let meta = h.inner().meta(n);
            meta.state == SlotState::Free && meta.canaried
        })
    }

    /// True if the slot physically after `ptr`'s slot holds a live object.
    fn next_slot_live(h: &DieFastHeap, ptr: Addr) -> bool {
        let loc = h.inner().location_of(ptr).unwrap();
        let (_, next) = h.inner().neighbors(loc);
        next.is_some_and(|n| h.inner().meta(n).state == SlotState::Live)
    }

    fn capture_all(heaps: &[DieFastHeap]) -> Vec<HeapImage> {
        heaps.iter().map(HeapImage::capture).collect()
    }

    #[test]
    fn clean_runs_isolate_nothing() {
        let heaps: Vec<DieFastHeap> = (1..=3).map(|s| scripted_heap(s).0).collect();
        let report = isolate(&capture_all(&heaps)).unwrap();
        assert!(report.is_empty(), "false positives: {report}");
    }

    #[test]
    fn needs_two_images() {
        let (h, _) = scripted_heap(1);
        let imgs = vec![HeapImage::capture(&h)];
        assert_eq!(
            isolate(&imgs).unwrap_err(),
            IsolationError::NotEnoughImages { got: 1 }
        );
    }

    #[test]
    fn deterministic_overflow_is_isolated_with_three_images() {
        // The "app" overflows 6 bytes past the end of allocation #11
        // (live, 16 bytes requested → 16-byte slot) in every run. Seeds are
        // chosen (deterministically) so the overflow lands on a canaried
        // fence-post in each image — Theorem 2 says this happens with
        // probability ≥ (M−1)/2M per image; the seed search just avoids
        // flakiness, it does not change what the algorithm sees.
        let mut heaps = Vec::new();
        let mut seed = 0u64;
        while heaps.len() < 3 {
            seed += 1;
            assert!(seed < 100, "no suitable seeds found");
            let (mut h, ptrs) = scripted_heap(seed);
            let culprit = ptrs[10]; // allocation #11 (0-based index 10)
            if !next_slot_canaried(&h, culprit) {
                continue;
            }
            h.arena_mut().write_bytes(culprit + 16, b"OVFLW!").unwrap();
            heaps.push(h);
        }
        let report = isolate(&capture_all(&heaps)).unwrap();
        assert!(
            !report.overflows.is_empty(),
            "overflow not detected: {report}"
        );
        let top = &report.overflows[0];
        assert_eq!(top.culprit_id, ObjectId::from_raw(11));
        assert_eq!(top.alloc_site, SITE_A, "allocation #11 came from SITE_A");
        assert_eq!(top.requested, 16);
        assert_eq!(top.max_extent, 22, "16-byte object + 6-byte overflow");
        assert_eq!(top.pad, 6, "exactly the Squid-style 6-byte pad");
        assert!(top.score > 0.99);
        assert!(report.dangling.is_empty());
        // And the generated patch pads the culprit's site.
        let patches = report.to_patches();
        assert_eq!(patches.pad_for(SITE_A), 6);
    }

    #[test]
    fn dangling_overwrite_is_classified_not_overflow() {
        // Free object #7 in every run, then write identical bytes through
        // the stale pointer. The scripted heap performs 140 allocations, so
        // this free happens at clock 140 in every run.
        let mut heaps = Vec::new();
        for seed in [44, 55, 66] {
            let (mut h, ptrs) = scripted_heap(seed);
            let stale = ptrs[6];
            h.free(stale, FREE_SITE);
            h.arena_mut().write_u64(stale, 0xDAD5_DAD5).unwrap();
            heaps.push(h);
        }
        let report = isolate(&capture_all(&heaps)).unwrap();
        assert_eq!(report.dangling.len(), 1, "report: {report}");
        let d = &report.dangling[0];
        assert_eq!(d.object_id, ObjectId::from_raw(7));
        assert_eq!(d.alloc_site, SITE_A);
        assert_eq!(d.free_site, FREE_SITE);
        assert_eq!(d.free_time, AllocTime::from_raw(140));
        assert_eq!(d.deferral, 1, "freed at the last alloc time: 2×0+1");
        assert!(
            report.overflows.is_empty(),
            "dangling misclassified as overflow: {report}"
        );
    }

    #[test]
    fn dangling_deferral_scales_with_prematurity() {
        // Free #7 at clock 60, then allocate 10 more (clock 70): the
        // deferral must be 2×(70−60)+1 = 21.
        let mut heaps = Vec::new();
        for seed in [47, 58, 69] {
            let (mut h, ptrs) = scripted_heap(seed);
            let stale = ptrs[6];
            h.free(stale, FREE_SITE);
            h.arena_mut().write_u64(stale, 0xDAD5_0001).unwrap();
            for _ in 0..10 {
                h.malloc(16, SITE_B).unwrap();
            }
            heaps.push(h);
        }
        let report = isolate(&capture_all(&heaps)).unwrap();
        assert_eq!(report.dangling.len(), 1, "report: {report}");
        assert_eq!(report.dangling[0].deferral, 21);
    }

    #[test]
    fn pointer_fields_are_not_false_positives() {
        // Each run stores a pointer to logical object #5 inside object #20:
        // raw values differ per heap but resolve identically.
        let mut heaps = Vec::new();
        for seed in [1, 2, 3] {
            let (mut h, ptrs) = scripted_heap(seed);
            let holder = ptrs[20];
            let pointee = ptrs[5];
            h.arena_mut().write_addr(holder, pointee).unwrap();
            heaps.push(h);
        }
        let report = isolate(&capture_all(&heaps)).unwrap();
        assert!(report.is_empty(), "pointer field flagged: {report}");
    }

    #[test]
    fn process_specific_values_are_not_false_positives() {
        // Each run stores a different "pid" in object #21 — differs in
        // every image, hence legitimately different.
        let mut heaps = Vec::new();
        for seed in [1, 2, 3] {
            let (mut h, ptrs) = scripted_heap(seed);
            h.arena_mut()
                .write_u64(ptrs[21], 0x9999_0000 + seed)
                .unwrap();
            heaps.push(h);
        }
        let report = isolate(&capture_all(&heaps)).unwrap();
        assert!(report.is_empty(), "pid-like value flagged: {report}");
    }

    #[test]
    fn overflow_onto_live_victims_detected_via_discrepancies() {
        // With canaries disabled (p = 0), detection must come entirely from
        // live-object diffs. Deterministically search for seeds where the
        // overflow target holds a live object (DieHard gives ≈50% per image
        // at 1/M occupancy), so the diff path is actually exercised.
        let mut heaps = Vec::new();
        let mut seed = 100u64;
        while heaps.len() < 3 {
            seed += 1;
            assert!(seed < 300, "no suitable seeds found");
            let mut h = DieFastHeap::new(DieFastConfig::with_seed(seed).fill_probability(0.0));
            let mut ptrs = Vec::new();
            for i in 0..60u64 {
                let p = h.malloc(16, SITE_A).unwrap();
                h.arena_mut().write_u64(p, 0x7000 + i).unwrap();
                ptrs.push(p);
            }
            if !next_slot_live(&h, ptrs[30]) {
                continue;
            }
            // Overflow out of allocation #31 onto the live neighbour.
            h.arena_mut()
                .write_bytes(ptrs[30] + 16, &[0xE1; 8])
                .unwrap();
            heaps.push(h);
        }
        let imgs = capture_all(&heaps);
        let report = isolate_with(
            &imgs,
            IsolateOptions {
                min_confirmations: 2,
            },
        )
        .unwrap();
        assert!(
            report
                .overflows
                .iter()
                .any(|o| o.culprit_id == ObjectId::from_raw(31)),
            "live-victim overflow missed: {report}"
        );
    }

    #[test]
    fn two_images_suffice_for_canary_overflows() {
        // Theorem 3: two images already reduce the expected number of
        // spurious culprits to ~1. Seeds are searched so the overflow hits
        // a canary in both images.
        let mut heaps = Vec::new();
        let mut seed = 1000u64;
        while heaps.len() < 2 {
            seed += 1;
            assert!(seed < 1200, "no suitable seeds found");
            let (mut h, ptrs) = scripted_heap(seed);
            if !next_slot_canaried(&h, ptrs[10]) {
                continue;
            }
            h.arena_mut()
                .write_bytes(ptrs[10] + 16, &[0x5A; 4])
                .unwrap();
            heaps.push(h);
        }
        let report = isolate(&capture_all(&heaps)).unwrap();
        assert!(
            report
                .overflows
                .first()
                .is_some_and(|o| o.culprit_id == ObjectId::from_raw(11)),
            "k=2 failed: {report}"
        );
    }

    #[test]
    fn merge_ranges_merges_contiguous_offsets() {
        assert_eq!(
            merge_ranges(&[1, 2, 3, 7, 9, 10]),
            vec![(1, 4), (7, 8), (9, 11)]
        );
        assert!(merge_ranges(&[]).is_empty());
    }

    #[test]
    fn majority_requires_strict_majority() {
        let a: &[u8] = &[1];
        let b: &[u8] = &[2];
        assert_eq!(majority_value(&[a, a, b]), Some(a));
        assert_eq!(majority_value(&[a, b]), None, "tie");
    }
}
