//! Cumulative-mode error isolation (paper §5).
//!
//! Cumulative mode drops every assumption the iterative/replicated modes
//! need: runs may be nondeterministic, inputs may differ, and object ids
//! need not match. Instead of heap images, each run is reduced to a
//! [`RunSummary`] of per-allocation-site statistics ("a few kilobytes per
//! execution, compared to tens or hundreds of megabytes for each heap
//! image"), and a Bayesian hypothesis test accumulated over runs flags the
//! sites that behave like error sources.
//!
//! **Overflows** (§5.1). When a run ends with corrupted canaries, every
//! object of the corrupt miniheap's size class gets a probability of
//! satisfying the culprit criteria (same miniheap, lower address):
//!
//! ```text
//! P(C_i) = size'(i, Mc) / Σ_j size'(i, M_j)  ×  k / size(Mc)
//! ```
//!
//! where `size'` zeroes miniheaps that did not exist when object `i` was
//! allocated, and `k` is the corrupted slot index. Per site `A`,
//! `X = P(C_A) = 1 − Π_i (1 − P(C_i))` and `Y = C_A` is whether some object
//! from `A` actually satisfied the criteria.
//!
//! **Dangling pointers** (§5.2). DieFast canaries freed objects with
//! probability `p`, making each run a Bernoulli trial: per site,
//! `X = 1 − (1−p)^frees` and `Y` is whether any freed object from the site
//! was actually canaried in a *failed* run.
//!
//! **The classifier** compares `H0: θ_A = 0` against `H1: θ_A > 0` with a
//! uniform prior on `θ_A` and prior odds `P(H1) = 1/(cN)`; a site is
//! flagged when the likelihood ratio exceeds `cN − 1`.

use std::collections::BTreeMap;

use xt_alloc::{AllocTime, SiteHash};
use xt_diehard::{MiniHeapId, ObjectLog};
use xt_image::HeapImage;
use xt_patch::PatchTable;

/// Tuning parameters for cumulative isolation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CumulativeConfig {
    /// The `c` of the prior `P(H1) = 1/(cN)`; the paper uses 4.
    pub prior_c: f64,
    /// Simpson-rule intervals for the `θ` likelihood integral.
    pub integration_steps: usize,
    /// DieFast's canary fill probability `p` (must match the heaps used).
    pub fill_probability: f64,
}

impl Default for CumulativeConfig {
    fn default() -> Self {
        CumulativeConfig {
            prior_c: 4.0,
            integration_steps: 512,
            fill_probability: 0.5,
        }
    }
}

/// One (X, Y) observation for one allocation site in one run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SiteObservation {
    /// The allocation site.
    pub site: SiteHash,
    /// `X`: the probability of the observation arising by chance.
    pub x: f64,
    /// `Y`: whether it was observed.
    pub y: bool,
}

/// Everything retained from one execution — the "relevant statistics about
/// each run" of §3.4.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunSummary {
    /// Whether the run failed (crashed, diverged, or raised a signal).
    pub failed: bool,
    /// Final allocation clock (`T`, the failure time).
    pub clock: AllocTime,
    /// Distinct allocation sites observed (`N` for the prior).
    pub n_sites: usize,
    /// Per-site overflow-criteria observations (§5.1); empty when the run
    /// ended without canary corruption.
    pub overflow_obs: Vec<SiteObservation>,
    /// Per-site canary observations (§5.2); empty for successful runs.
    pub dangling_obs: Vec<SiteObservation>,
    /// Per-site pad hints from this run's corruption: the pad that would
    /// have contained the corruption had this site been the culprit.
    pub pad_hints: Vec<(SiteHash, u32)>,
    /// Per-site deferral hints: `(alloc site, free site, 2 × (T − τ_oldest))`.
    pub defer_hints: Vec<(SiteHash, SiteHash, u64)>,
}

/// Builds a [`RunSummary`] from a finished run's final heap image and
/// allocation history.
///
/// `failed` tells the summarizer whether the run counts as a failure
/// (dangling observations are only meaningful for failed runs, §5.2).
#[must_use]
pub fn summarize_run(
    image: &HeapImage,
    log: &ObjectLog,
    failed: bool,
    fill_probability: f64,
) -> RunSummary {
    let mut summary = RunSummary {
        failed,
        clock: image.clock,
        n_sites: log.distinct_alloc_sites().len(),
        ..RunSummary::default()
    };
    summarize_overflow(image, log, &mut summary);
    if failed {
        summarize_dangling(log, image.clock, fill_probability, &mut summary);
    }
    summary
}

/// Geometry of the principal corruption: the corrupt miniheap, the slot
/// index of the first corrupted byte, and the corruption's address range.
struct CorruptionGeometry {
    miniheap: MiniHeapId,
    corrupt_slot: usize,
    n_slots: usize,
    corr_start: u64,
    corr_end: u64,
    mh_base: u64,
    object_size: u64,
}

fn principal_corruption(image: &HeapImage) -> Option<CorruptionGeometry> {
    let corruptions = image.scan_canary_corruptions();
    // Group by miniheap; take the miniheap with the most corrupt bytes.
    let mut per_mh: BTreeMap<usize, (usize, u64, u64)> = BTreeMap::new();
    for c in &corruptions {
        let start = c.addr.get() + c.first_bad as u64;
        let end = c.addr.get() + c.end_bad as u64;
        let entry = per_mh.entry(c.slot.miniheap).or_insert((0, u64::MAX, 0));
        entry.0 += c.n_bad;
        entry.1 = entry.1.min(start);
        entry.2 = entry.2.max(end);
    }
    let (&mh_idx, &(_, corr_start, corr_end)) =
        per_mh.iter().max_by_key(|(_, (bytes, _, _))| *bytes)?;
    let mh = &image.miniheaps[mh_idx];
    let corrupt_slot = ((corr_start - mh.base.get()) / u64::from(mh.object_size)) as usize;
    Some(CorruptionGeometry {
        miniheap: mh.id,
        corrupt_slot,
        n_slots: mh.slots.len(),
        corr_start,
        corr_end,
        mh_base: mh.base.get(),
        object_size: u64::from(mh.object_size),
    })
}

/// §5.1: per-site culprit-criteria probabilities for the observed
/// corruption.
fn summarize_overflow(image: &HeapImage, log: &ObjectLog, summary: &mut RunSummary) {
    let Some(geo) = principal_corruption(image) else {
        return;
    };
    // Miniheaps of the corrupt size class, with creation times — the
    // denominator of the placement factor.
    let class_heaps: Vec<(MiniHeapId, AllocTime, u64)> = image
        .miniheaps
        .iter()
        .filter(|m| m.id.class == geo.miniheap.class)
        .map(|m| (m.id, m.created_at, m.slots.len() as u64))
        .collect();
    let mc_size = geo.n_slots as f64;
    let k = geo.corrupt_slot as f64;

    // Probability that at least one object from each site satisfies the
    // criteria, and whether one actually did.
    let mut p_none: BTreeMap<SiteHash, f64> = BTreeMap::new();
    let mut observed: BTreeMap<SiteHash, bool> = BTreeMap::new();
    // Pad hint: nearest object from each site at or below the corruption.
    let mut nearest_below: BTreeMap<SiteHash, (u64, u32)> = BTreeMap::new();

    for rec in log.records() {
        if rec.size_class != geo.miniheap.class {
            continue;
        }
        // Placement factor: Σ size(M_j) over miniheaps existing at τ(i).
        let denom: f64 = class_heaps
            .iter()
            .filter(|(_, created, _)| *created <= rec.alloc_time)
            .map(|(_, _, size)| *size as f64)
            .sum();
        let mc_available = class_heaps
            .iter()
            .any(|(id, created, _)| *id == geo.miniheap && *created <= rec.alloc_time);
        let p_ci = if denom > 0.0 && mc_available {
            (mc_size / denom) * (k / mc_size)
        } else {
            0.0
        };
        let entry = p_none.entry(rec.alloc_site).or_insert(1.0);
        *entry *= 1.0 - p_ci;
        let obs = observed.entry(rec.alloc_site).or_insert(false);
        if rec.miniheap == geo.miniheap {
            let slot_addr = geo.mh_base + u64::from(rec.slot) * geo.object_size;
            if slot_addr < geo.corr_start {
                *obs = true;
                let dist_pad = geo
                    .corr_end
                    .saturating_sub(slot_addr)
                    .saturating_sub(u64::from(rec.requested));
                let hint = u32::try_from(dist_pad).unwrap_or(u32::MAX);
                let e = nearest_below.entry(rec.alloc_site).or_insert((0, 0));
                if slot_addr >= e.0 {
                    *e = (slot_addr, hint);
                }
            }
        }
    }

    for (site, p_no) in p_none {
        summary.overflow_obs.push(SiteObservation {
            site,
            x: 1.0 - p_no,
            y: observed.get(&site).copied().unwrap_or(false),
        });
    }
    summary.pad_hints = nearest_below
        .into_iter()
        .filter(|(_, (_, pad))| *pad > 0)
        .map(|(site, (_, pad))| (site, pad))
        .collect();
}

/// §5.2: per-site canary Bernoulli observations for a failed run.
fn summarize_dangling(log: &ObjectLog, fail_clock: AllocTime, p: f64, summary: &mut RunSummary) {
    struct SiteAcc {
        frees: u32,
        canaried: u32,
        oldest: Option<(AllocTime, SiteHash)>,
    }
    let mut per_site: BTreeMap<SiteHash, SiteAcc> = BTreeMap::new();
    for rec in log.records() {
        let Some(free) = rec.free else { continue };
        let acc = per_site.entry(rec.alloc_site).or_insert(SiteAcc {
            frees: 0,
            canaried: 0,
            oldest: None,
        });
        acc.frees += 1;
        if free.canaried {
            acc.canaried += 1;
            let older = acc.oldest.is_none_or(|(t, _)| free.free_time < t);
            if older {
                acc.oldest = Some((free.free_time, free.free_site));
            }
        }
    }
    for (site, acc) in per_site {
        summary.dangling_obs.push(SiteObservation {
            site,
            x: 1.0 - (1.0 - p).powi(acc.frees as i32),
            y: acc.canaried > 0,
        });
        if let Some((free_time, free_site)) = acc.oldest {
            let deferral = (2 * fail_clock.since(free_time)).max(1);
            summary.defer_hints.push((site, free_site, deferral));
        }
    }
}

/// The outcome of the hypothesis test for one site.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Verdict {
    /// The allocation site under test.
    pub site: SiteHash,
    /// Likelihood of the observations under `H0: θ = 0`.
    pub l0: f64,
    /// Likelihood under `H1: θ > 0` (uniform prior, integrated out).
    pub l1: f64,
    /// `l1 / l0` (∞ if `l0` underflows to zero while `l1 > 0`).
    pub ratio: f64,
    /// Whether the ratio exceeds the decision threshold `cN − 1`.
    pub flagged: bool,
    /// Number of observations accumulated.
    pub observations: usize,
}

/// `P(X̄, Ȳ | H0) = Π ((1−X)(1−Y) + X·Y)`.
#[must_use]
pub fn likelihood_h0(obs: &[(f64, bool)]) -> f64 {
    obs.iter()
        .map(|&(x, y)| if y { x } else { 1.0 - x })
        .product()
}

/// `P(X̄, Ȳ | H1) = ∫₀¹ Π (q·Y + (1−q)·(1−Y)) dθ` with `q = (1−θ)X + θ`,
/// evaluated with Simpson's rule.
#[must_use]
pub fn likelihood_h1(obs: &[(f64, bool)], steps: usize) -> f64 {
    let n = steps.max(2) & !1; // even
    let h = 1.0 / n as f64;
    let f = |theta: f64| -> f64 {
        obs.iter()
            .map(|&(x, y)| {
                let q = (1.0 - theta) * x + theta;
                if y {
                    q
                } else {
                    1.0 - q
                }
            })
            .product()
    };
    let mut sum = f(0.0) + f(1.0);
    for i in 1..n {
        let w = if i % 2 == 1 { 4.0 } else { 2.0 };
        sum += w * f(i as f64 * h);
    }
    sum * h / 3.0
}

/// Runs the §5.1 hypothesis test for one site's accumulated observations.
#[must_use]
pub fn classify(
    site: SiteHash,
    obs: &[(f64, bool)],
    n_sites: usize,
    config: &CumulativeConfig,
) -> Verdict {
    let l0 = likelihood_h0(obs);
    let l1 = likelihood_h1(obs, config.integration_steps);
    let threshold = (config.prior_c * n_sites.max(1) as f64 - 1.0).max(1.0);
    let ratio = if l0 > 0.0 {
        l1 / l0
    } else if l1 > 0.0 {
        f64::INFINITY
    } else {
        1.0
    };
    Verdict {
        site,
        l0,
        l1,
        ratio,
        flagged: ratio > threshold,
        observations: obs.len(),
    }
}

/// Accumulates run summaries and produces verdicts and patches.
///
/// # Example
///
/// ```
/// use xt_alloc::SiteHash;
/// use xt_isolate::cumulative::{CumulativeConfig, CumulativeIsolator, RunSummary, SiteObservation};
///
/// let mut iso = CumulativeIsolator::new(CumulativeConfig::default());
/// // Feed synthetic failed runs where the site was always canaried
/// // despite a 50% fill probability — the dangling signature.
/// for _ in 0..20 {
///     let mut run = RunSummary { failed: true, n_sites: 10, ..RunSummary::default() };
///     run.dangling_obs.push(SiteObservation {
///         site: SiteHash::from_raw(0xBAD),
///         x: 0.5,
///         y: true,
///     });
///     run.defer_hints.push((SiteHash::from_raw(0xBAD), SiteHash::from_raw(0xF), 42));
///     iso.record_run(&run);
/// }
/// let flagged = iso.dangling_verdicts();
/// assert!(flagged.iter().any(|v| v.site == SiteHash::from_raw(0xBAD) && v.flagged));
/// ```
#[derive(Clone, Debug)]
pub struct CumulativeIsolator {
    config: CumulativeConfig,
    overflow_data: BTreeMap<SiteHash, Vec<(f64, bool)>>,
    dangling_data: BTreeMap<SiteHash, Vec<(f64, bool)>>,
    pad_hints: BTreeMap<SiteHash, u32>,
    defer_hints: BTreeMap<SiteHash, (SiteHash, u64)>,
    n_sites: usize,
    runs: usize,
    failures: usize,
}

impl CumulativeIsolator {
    /// Creates an empty isolator.
    #[must_use]
    pub fn new(config: CumulativeConfig) -> Self {
        CumulativeIsolator {
            config,
            overflow_data: BTreeMap::new(),
            dangling_data: BTreeMap::new(),
            pad_hints: BTreeMap::new(),
            defer_hints: BTreeMap::new(),
            n_sites: 1,
            runs: 0,
            failures: 0,
        }
    }

    /// The isolator's configuration.
    #[must_use]
    pub fn config(&self) -> &CumulativeConfig {
        &self.config
    }

    /// Total runs recorded.
    #[must_use]
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Failed runs recorded.
    #[must_use]
    pub fn failures(&self) -> usize {
        self.failures
    }

    /// Folds one run's summary into the accumulated state.
    pub fn record_run(&mut self, summary: &RunSummary) {
        self.runs += 1;
        if summary.failed {
            self.failures += 1;
        }
        self.n_sites = self.n_sites.max(summary.n_sites);
        for obs in &summary.overflow_obs {
            self.overflow_data
                .entry(obs.site)
                .or_default()
                .push((obs.x, obs.y));
        }
        for obs in &summary.dangling_obs {
            self.dangling_data
                .entry(obs.site)
                .or_default()
                .push((obs.x, obs.y));
        }
        for &(site, pad) in &summary.pad_hints {
            let e = self.pad_hints.entry(site).or_insert(0);
            *e = (*e).max(pad);
        }
        for &(site, free_site, ticks) in &summary.defer_hints {
            let e = self.defer_hints.entry(site).or_insert((free_site, 0));
            if ticks > e.1 {
                *e = (free_site, ticks);
            }
        }
    }

    /// Hypothesis-test verdicts for all sites with overflow observations.
    #[must_use]
    pub fn overflow_verdicts(&self) -> Vec<Verdict> {
        self.overflow_data
            .iter()
            .map(|(&site, obs)| classify(site, obs, self.n_sites, &self.config))
            .collect()
    }

    /// Hypothesis-test verdicts for all sites with dangling observations.
    #[must_use]
    pub fn dangling_verdicts(&self) -> Vec<Verdict> {
        self.dangling_data
            .iter()
            .map(|(&site, obs)| classify(site, obs, self.n_sites, &self.config))
            .collect()
    }

    /// Generates runtime patches for every flagged site, using the pad and
    /// deferral hints gathered from failing runs.
    #[must_use]
    pub fn generate_patches(&self) -> PatchTable {
        let mut patches = PatchTable::new();
        for v in self.overflow_verdicts() {
            if !v.flagged {
                continue;
            }
            if let Some(&pad) = self.pad_hints.get(&v.site) {
                patches.add_pad(v.site, pad);
            }
        }
        for v in self.dangling_verdicts() {
            if !v.flagged {
                continue;
            }
            if let Some(&(free_site, ticks)) = self.defer_hints.get(&v.site) {
                patches.add_deferral(xt_alloc::SitePair::new(v.site, free_site), ticks);
            }
        }
        patches
    }

    /// Serializes the accumulated state to a text format, so it can be
    /// carried between executions alongside the patch file — §3.4:
    /// "Exterminator computes relevant statistics about each run and
    /// stores them in its patch file."
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::from("# exterminator cumulative state v1\n");
        out.push_str(&format!(
            "meta {} {} {} {} {} {}\n",
            self.runs,
            self.failures,
            self.n_sites,
            self.config.prior_c,
            self.config.integration_steps,
            self.config.fill_probability,
        ));
        let dump = |out: &mut String, tag: &str, data: &BTreeMap<SiteHash, Vec<(f64, bool)>>| {
            for (site, obs) in data {
                for &(x, y) in obs {
                    out.push_str(&format!(
                        "{tag} {:08x} {:016x} {}\n",
                        site.raw(),
                        x.to_bits(),
                        u8::from(y)
                    ));
                }
            }
        };
        dump(&mut out, "oobs", &self.overflow_data);
        dump(&mut out, "dobs", &self.dangling_data);
        for (site, pad) in &self.pad_hints {
            out.push_str(&format!("padhint {:08x} {pad}\n", site.raw()));
        }
        for (site, (free_site, ticks)) in &self.defer_hints {
            out.push_str(&format!(
                "deferhint {:08x} {:08x} {ticks}\n",
                site.raw(),
                free_site.raw()
            ));
        }
        out
    }

    /// Restores accumulated state written by [`CumulativeIsolator::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut iso = CumulativeIsolator::new(CumulativeConfig::default());
        for (lineno, raw_line) in text.lines().enumerate() {
            let line = raw_line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let fail = |what: &str| format!("cumulative state line {}: {what}", lineno + 1);
            let site = |s: &str| {
                u32::from_str_radix(s, 16)
                    .map(SiteHash::from_raw)
                    .map_err(|_| fail("bad site hash"))
            };
            match fields.as_slice() {
                ["meta", runs, failures, n_sites, prior_c, steps, p] => {
                    iso.runs = runs.parse().map_err(|_| fail("bad runs"))?;
                    iso.failures = failures.parse().map_err(|_| fail("bad failures"))?;
                    iso.n_sites = n_sites.parse().map_err(|_| fail("bad n_sites"))?;
                    iso.config.prior_c = prior_c.parse().map_err(|_| fail("bad prior"))?;
                    iso.config.integration_steps = steps.parse().map_err(|_| fail("bad steps"))?;
                    iso.config.fill_probability = p.parse().map_err(|_| fail("bad p"))?;
                }
                [tag @ ("oobs" | "dobs"), s, xbits, y] => {
                    let x = f64::from_bits(
                        u64::from_str_radix(xbits, 16).map_err(|_| fail("bad x bits"))?,
                    );
                    let y = match *y {
                        "0" => false,
                        "1" => true,
                        _ => return Err(fail("bad y")),
                    };
                    let data = if *tag == "oobs" {
                        &mut iso.overflow_data
                    } else {
                        &mut iso.dangling_data
                    };
                    data.entry(site(s)?).or_default().push((x, y));
                }
                ["padhint", s, pad] => {
                    let pad: u32 = pad.parse().map_err(|_| fail("bad pad"))?;
                    let e = iso.pad_hints.entry(site(s)?).or_insert(0);
                    *e = (*e).max(pad);
                }
                ["deferhint", s, f, ticks] => {
                    let ticks: u64 = ticks.parse().map_err(|_| fail("bad ticks"))?;
                    iso.defer_hints.insert(site(s)?, (site(f)?, ticks));
                }
                _ => return Err(fail("unrecognized directive")),
            }
        }
        Ok(iso)
    }

    /// Approximate retained-state size in bytes — the paper stresses this
    /// is "a few kilobytes per execution" instead of a heap image.
    #[must_use]
    pub fn state_bytes(&self) -> usize {
        let per_obs = std::mem::size_of::<(f64, bool)>();
        (self.overflow_data.len() + self.dangling_data.len()) * 8
            + self
                .overflow_data
                .values()
                .chain(self.dangling_data.values())
                .map(|v| v.len() * per_obs)
                .sum::<usize>()
            + (self.pad_hints.len() + self.defer_hints.len()) * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_alloc::Heap;
    use xt_diefast::{DieFastConfig, DieFastHeap};

    const BUGGY: SiteHash = SiteHash::from_raw(0xB06);
    const CLEAN: SiteHash = SiteHash::from_raw(0xC1EA);

    #[test]
    fn h0_likelihood_matches_formula() {
        let obs = [(0.5, true), (0.25, false), (1.0, true)];
        let expected = 0.5 * 0.75 * 1.0;
        assert!((likelihood_h0(&obs) - expected).abs() < 1e-12);
    }

    #[test]
    fn h1_integral_matches_closed_form() {
        // All-heads with constant x: ∫ ((1−θ)x + θ)^m dθ has closed form
        // (1 − x^{m+1}) / ((m+1)(1−x)).
        let m = 10;
        let x: f64 = 0.5;
        let obs: Vec<(f64, bool)> = (0..m).map(|_| (x, true)).collect();
        let closed = (1.0 - x.powi(m + 1)) / ((m as f64 + 1.0) * (1.0 - x));
        let simpson = likelihood_h1(&obs, 512);
        assert!(
            (simpson - closed).abs() < 1e-9,
            "simpson {simpson} vs closed {closed}"
        );
    }

    #[test]
    fn classifier_flags_persistent_correlation() {
        // Fifteen failures, always canaried at p = 1/2 — the paper's
        // espresso scenario (§7.2).
        let obs: Vec<(f64, bool)> = (0..15).map(|_| (0.5, true)).collect();
        let config = CumulativeConfig::default();
        let v = classify(BUGGY, &obs, 250, &config);
        assert!(
            v.flagged,
            "15 correlated failures must cross the cN−1 = 999 threshold, ratio {}",
            v.ratio
        );
        // But too few observations must not be flagged at that N.
        let few: Vec<(f64, bool)> = (0..5).map(|_| (0.5, true)).collect();
        assert!(!classify(BUGGY, &few, 250, &config).flagged);
    }

    #[test]
    fn classifier_spares_chance_level_sites() {
        // A site canaried about half the time, as chance predicts.
        let obs: Vec<(f64, bool)> = (0..40).map(|i| (0.5, i % 2 == 0)).collect();
        let v = classify(CLEAN, &obs, 250, &CumulativeConfig::default());
        assert!(!v.flagged, "chance-level site flagged, ratio {}", v.ratio);
        assert!(v.ratio < 10.0);
    }

    #[test]
    fn classifier_spares_always_canaried_busy_sites() {
        // A site that frees hundreds of objects: X ≈ 1 and Y = 1 — no
        // information, no flag.
        let obs: Vec<(f64, bool)> = (0..30).map(|_| (0.999, true)).collect();
        let v = classify(CLEAN, &obs, 250, &CumulativeConfig::default());
        assert!(!v.flagged, "uninformative site flagged, ratio {}", v.ratio);
    }

    #[test]
    fn summary_computes_placement_probabilities() {
        // Single miniheap in the class ⇒ placement factor 1, so
        // X(site) = 1 − Π (1 − k/size).
        let mut h = DieFastHeap::new(DieFastConfig::cumulative_with_seed(9));
        let mut ptrs = Vec::new();
        for i in 0..12u64 {
            let site = if i == 5 { BUGGY } else { CLEAN };
            ptrs.push(h.malloc(16, site).unwrap());
        }
        // Free one object and corrupt its canary (if it got one).
        let victim = ptrs[7];
        h.free(victim, SiteHash::from_raw(1));
        let loc = h.inner().location_of(victim).unwrap();
        if !h.inner().meta(loc).canaried {
            // With p = 1/2 the slot may not be canaried under this seed;
            // the test requires it, so re-run deterministically.
            // (Seed 9 canaries this free; guard anyway.)
            return;
        }
        h.arena_mut().write_u32(victim, 0x0BAD_0B0E).unwrap();
        let image = HeapImage::capture(&h);
        let log = h.inner().history().unwrap();
        let summary = summarize_run(&image, log, true, 0.5);
        assert!(
            !summary.overflow_obs.is_empty(),
            "corruption not summarized"
        );
        let mh = &image.miniheaps[0];
        let k = (victim - mh.base) / u64::from(mh.object_size);
        let n = mh.slots.len() as f64;
        let p_single = k as f64 / n;
        let buggy_obs = summary
            .overflow_obs
            .iter()
            .find(|o| o.site == BUGGY)
            .unwrap();
        assert!(
            (buggy_obs.x - p_single).abs() < 1e-9,
            "one-object site: X = k/size, got {} want {}",
            buggy_obs.x,
            p_single
        );
        let clean_obs = summary
            .overflow_obs
            .iter()
            .find(|o| o.site == CLEAN)
            .unwrap();
        let expect_clean = 1.0 - (1.0 - p_single).powi(11);
        assert!(
            (clean_obs.x - expect_clean).abs() < 1e-9,
            "eleven-object site: X = 1−(1−k/size)^11"
        );
        assert_eq!(summary.n_sites, 2);
    }

    #[test]
    fn dangling_summary_counts_canaries() {
        let mut h = DieFastHeap::new(DieFastConfig::cumulative_with_seed(3));
        let mut frees = 0;
        for i in 0..40u64 {
            let p = h.malloc(16, BUGGY).unwrap();
            if i % 2 == 0 {
                h.free(p, SiteHash::from_raw(0xF));
                frees += 1;
            }
        }
        let image = HeapImage::capture(&h);
        let summary = summarize_run(&image, h.inner().history().unwrap(), true, 0.5);
        let obs = summary
            .dangling_obs
            .iter()
            .find(|o| o.site == BUGGY)
            .unwrap();
        let expected_x = 1.0 - 0.5f64.powi(frees);
        assert!((obs.x - expected_x).abs() < 1e-9);
        assert!(obs.y, "20 frees at p=1/2: some canary is near-certain");
        assert!(!summary.defer_hints.is_empty());
    }

    #[test]
    fn successful_runs_skip_dangling_observations() {
        let mut h = DieFastHeap::new(DieFastConfig::cumulative_with_seed(4));
        let p = h.malloc(16, BUGGY).unwrap();
        h.free(p, SiteHash::from_raw(0xF));
        let image = HeapImage::capture(&h);
        let summary = summarize_run(&image, h.inner().history().unwrap(), false, 0.5);
        assert!(summary.dangling_obs.is_empty());
        assert!(!summary.failed);
    }

    #[test]
    fn isolator_flags_and_patches_dangling_site() {
        let mut iso = CumulativeIsolator::new(CumulativeConfig::default());
        let mut failures_to_flag = None;
        for run in 1..=40 {
            let mut summary = RunSummary {
                failed: true,
                n_sites: 100,
                ..RunSummary::default()
            };
            summary.dangling_obs.push(SiteObservation {
                site: BUGGY,
                x: 0.5,
                y: true,
            });
            summary.dangling_obs.push(SiteObservation {
                site: CLEAN,
                x: 0.5,
                y: run % 2 == 0,
            });
            summary
                .defer_hints
                .push((BUGGY, SiteHash::from_raw(0xF), 30));
            iso.record_run(&summary);
            let flagged = iso
                .dangling_verdicts()
                .iter()
                .any(|v| v.site == BUGGY && v.flagged);
            if flagged && failures_to_flag.is_none() {
                failures_to_flag = Some(run);
            }
        }
        let needed = failures_to_flag.expect("buggy site never flagged");
        assert!(
            (8..=20).contains(&needed),
            "needed {needed} failures at N=100 — paper reports ~15"
        );
        // The clean site is never flagged.
        assert!(
            !iso.dangling_verdicts()
                .iter()
                .any(|v| v.site == CLEAN && v.flagged),
            "false positive on clean site"
        );
        let patches = iso.generate_patches();
        assert_eq!(
            patches.deferral_for(xt_alloc::SitePair::new(BUGGY, SiteHash::from_raw(0xF))),
            30
        );
        assert_eq!(iso.runs(), 40);
        assert_eq!(iso.failures(), 40);
        assert!(iso.state_bytes() < 4096, "state must stay small");
    }

    #[test]
    fn state_round_trips_through_text() {
        let mut iso = CumulativeIsolator::new(CumulativeConfig::default());
        for run in 0..7 {
            let mut summary = RunSummary {
                failed: run % 2 == 0,
                n_sites: 42,
                ..RunSummary::default()
            };
            summary.overflow_obs.push(SiteObservation {
                site: BUGGY,
                x: 0.125 * (run as f64 + 1.0),
                y: run % 2 == 0,
            });
            summary.dangling_obs.push(SiteObservation {
                site: CLEAN,
                x: 0.5,
                y: true,
            });
            summary.pad_hints.push((BUGGY, 20 + run as u32));
            summary
                .defer_hints
                .push((CLEAN, SiteHash::from_raw(0xF), 30 + run as u64));
            iso.record_run(&summary);
        }
        let restored = CumulativeIsolator::from_text(&iso.to_text()).expect("parses");
        assert_eq!(restored.runs(), iso.runs());
        assert_eq!(restored.failures(), iso.failures());
        // Verdicts and patches are identical after the round trip.
        let a: Vec<_> = iso.overflow_verdicts();
        let b: Vec<_> = restored.overflow_verdicts();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.site, y.site);
            assert!((x.ratio - y.ratio).abs() < 1e-12);
            assert_eq!(x.flagged, y.flagged);
        }
        assert_eq!(restored.generate_patches(), iso.generate_patches());
    }

    #[test]
    fn state_parser_rejects_garbage() {
        assert!(CumulativeIsolator::from_text("nonsense line").is_err());
        assert!(CumulativeIsolator::from_text("oobs zz 0 1").is_err());
        assert!(CumulativeIsolator::from_text("meta 1 2").is_err());
        // Comments and blanks are fine.
        assert!(CumulativeIsolator::from_text("# hi\n\n").is_ok());
    }

    #[test]
    fn isolator_flags_overflow_site() {
        let mut iso = CumulativeIsolator::new(CumulativeConfig::default());
        for _ in 0..12 {
            let mut summary = RunSummary {
                failed: true,
                n_sites: 50,
                ..RunSummary::default()
            };
            // The buggy site always satisfies the criteria despite a low
            // chance probability.
            summary.overflow_obs.push(SiteObservation {
                site: BUGGY,
                x: 0.3,
                y: true,
            });
            summary.pad_hints.push((BUGGY, 36));
            iso.record_run(&summary);
        }
        let verdicts = iso.overflow_verdicts();
        let v = verdicts.iter().find(|v| v.site == BUGGY).unwrap();
        assert!(v.flagged, "ratio {} below threshold", v.ratio);
        assert_eq!(iso.generate_patches().pad_for(BUGGY), 36);
    }
}
