//! Incremental, mergeable cumulative-mode evidence (§5, fleet-scale form).
//!
//! [`CumulativeIsolator`](crate::cumulative::CumulativeIsolator) is
//! *batch*-shaped: it stores every `(X, Y)` observation and re-evaluates
//! the likelihood integral over the full list on each query — O(runs ×
//! steps) per site per classification, and two isolators cannot be
//! combined without replaying raw observations. That is fine for one
//! user's patch file; it does not scale to a service aggregating reports
//! from thousands of clients.
//!
//! This module keeps the same hypothesis test in *running-product* form.
//! For one site, the two likelihoods of §5 are products over observations:
//!
//! ```text
//! L0 = Π_i  (X_i if Y_i else 1 − X_i)
//! L1 = ∫₀¹ Π_i (q_i if Y_i else 1 − q_i) dθ,   q_i = (1−θ)·X_i + θ
//! ```
//!
//! `L0` is a scalar running product. For `L1`, the integrand evaluated at
//! the fixed Simpson nodes `θ_j = j/steps` is *also* a per-node running
//! product, so [`SiteEvidence`] maintains the integrand as a vector of
//! `steps + 1` partial products and folds each new observation in with one
//! multiply per node — O(steps) per observation, O(steps) per
//! classification, and **no observation list at all**.
//!
//! Because every stored quantity is a product of per-observation factors,
//! two evidence states over disjoint observation sets combine by pointwise
//! multiplication: [`SiteEvidence::merge`] is commutative and associative,
//! which is exactly what a sharded aggregation service needs — any
//! partition of the fleet's reports, folded in any order, converges to the
//! same state (up to float rounding). [`EvidenceTable`] lifts the same
//! property to whole run summaries (site maps, pad/deferral hints, run
//! counters), giving `xt-fleet` its CRDT-style shard state.

use std::collections::BTreeMap;

use xt_alloc::{SiteHash, SitePair};
use xt_patch::PatchTable;

use crate::cumulative::{CumulativeConfig, RunSummary, Verdict};

/// Running-product evidence for one allocation site: the §5 hypothesis
/// test in incremental form.
///
/// # Example
///
/// ```
/// use xt_isolate::evidence::SiteEvidence;
///
/// // Fifteen failures, always canaried at p = 1/2 — the espresso
/// // dangling signature (§7.2).
/// let mut e = SiteEvidence::new(512);
/// for _ in 0..15 {
///     e.observe(0.5, true);
/// }
/// // The same evidence split across two aggregators and merged.
/// let mut a = SiteEvidence::new(512);
/// let mut b = SiteEvidence::new(512);
/// for i in 0..15 {
///     if i % 2 == 0 { a.observe(0.5, true) } else { b.observe(0.5, true) }
/// }
/// a.merge(&b);
/// assert!((a.ratio() - e.ratio()).abs() < 1e-9 * e.ratio());
/// assert_eq!(a.observations(), 15);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SiteEvidence {
    /// Observations folded in so far.
    obs: usize,
    /// Running `L0` product.
    l0: f64,
    /// Running integrand products at the `steps + 1` Simpson nodes.
    grid: Vec<f64>,
}

impl SiteEvidence {
    /// Creates empty evidence integrating over `steps` Simpson intervals
    /// (forced even, minimum 2 — same convention as
    /// [`likelihood_h1`](crate::cumulative::likelihood_h1)).
    #[must_use]
    pub fn new(steps: usize) -> Self {
        let n = steps.max(2) & !1;
        SiteEvidence {
            obs: 0,
            l0: 1.0,
            grid: vec![1.0; n + 1],
        }
    }

    /// Number of Simpson intervals this evidence integrates over.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.grid.len() - 1
    }

    /// Observations folded in.
    #[must_use]
    pub fn observations(&self) -> usize {
        self.obs
    }

    /// Folds one `(X, Y)` observation in: one multiply for `L0` plus one
    /// per Simpson node.
    pub fn observe(&mut self, x: f64, y: bool) {
        self.obs += 1;
        self.l0 *= if y { x } else { 1.0 - x };
        let n = self.grid.len() - 1;
        for (j, g) in self.grid.iter_mut().enumerate() {
            let theta = j as f64 / n as f64;
            let q = (1.0 - theta) * x + theta;
            *g *= if y { q } else { 1.0 - q };
        }
    }

    /// Combines evidence accumulated over a *disjoint* set of observations
    /// (pointwise product). Commutative and associative, so shards and
    /// aggregators can fold states in any order.
    ///
    /// # Panics
    ///
    /// Panics if the two sides integrate over different Simpson grids —
    /// states are only combinable under one configuration.
    pub fn merge(&mut self, other: &SiteEvidence) {
        assert_eq!(
            self.grid.len(),
            other.grid.len(),
            "cannot merge evidence with different integration grids"
        );
        self.obs += other.obs;
        self.l0 *= other.l0;
        for (g, o) in self.grid.iter_mut().zip(&other.grid) {
            *g *= o;
        }
    }

    /// Likelihood of the observations under `H0: θ = 0`.
    #[must_use]
    pub fn l0(&self) -> f64 {
        self.l0
    }

    /// Likelihood under `H1: θ > 0`: Simpson combination of the running
    /// node products.
    #[must_use]
    pub fn l1(&self) -> f64 {
        let n = self.grid.len() - 1;
        let h = 1.0 / n as f64;
        let mut sum = self.grid[0] + self.grid[n];
        for (j, &g) in self.grid.iter().enumerate().take(n).skip(1) {
            sum += if j % 2 == 1 { 4.0 * g } else { 2.0 * g };
        }
        sum * h / 3.0
    }

    /// `L1 / L0` (∞ if `L0` underflows to zero while `L1 > 0`, 1 if both
    /// vanish) — the statistic compared against the `cN − 1` threshold.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        let (l0, l1) = (self.l0(), self.l1());
        if l0 > 0.0 {
            l1 / l0
        } else if l1 > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }

    /// The raw running-product state: `(observations, L0, grid)`. The
    /// floats are the state — a durability layer that snapshots these
    /// exact bit patterns and restores them with
    /// [`SiteEvidence::from_raw_parts`] reproduces classification
    /// byte-identically, with no re-derivation and no rounding drift.
    #[must_use]
    pub fn raw_parts(&self) -> (usize, f64, &[f64]) {
        (self.obs, self.l0, &self.grid)
    }

    /// Rebuilds evidence from state captured by
    /// [`SiteEvidence::raw_parts`].
    ///
    /// # Panics
    ///
    /// Panics if `grid` is not a valid Simpson node vector (`steps + 1`
    /// entries for an even `steps >= 2`) — restoring a malformed grid
    /// would silently corrupt every later merge.
    #[must_use]
    pub fn from_raw_parts(obs: usize, l0: f64, grid: Vec<f64>) -> Self {
        assert!(
            grid.len() >= 3 && grid.len() % 2 == 1,
            "grid of {} nodes is not steps + 1 for an even steps >= 2",
            grid.len()
        );
        SiteEvidence { obs, l0, grid }
    }

    /// The §5.1 decision for this site under prior constant `prior_c` and
    /// site population `n_sites`.
    #[must_use]
    pub fn verdict(&self, site: SiteHash, n_sites: usize, prior_c: f64) -> Verdict {
        let threshold = (prior_c * n_sites.max(1) as f64 - 1.0).max(1.0);
        let ratio = self.ratio();
        Verdict {
            site,
            l0: self.l0(),
            l1: self.l1(),
            ratio,
            flagged: ratio > threshold,
            observations: self.obs,
        }
    }
}

/// A mergeable aggregate of cumulative-mode evidence: per-site
/// [`SiteEvidence`] for both error families, pad/deferral hints, and run
/// counters. The order-insensitive equivalent of
/// [`CumulativeIsolator`](crate::cumulative::CumulativeIsolator), and the
/// state each `xt-fleet` shard keeps.
#[derive(Clone, Debug, PartialEq)]
pub struct EvidenceTable {
    config: CumulativeConfig,
    overflow: BTreeMap<SiteHash, SiteEvidence>,
    dangling: BTreeMap<SiteHash, SiteEvidence>,
    pad_hints: BTreeMap<SiteHash, u32>,
    defer_hints: BTreeMap<SitePair, u64>,
    runs: usize,
    failures: usize,
    n_sites: usize,
}

impl EvidenceTable {
    /// Creates an empty table under `config`.
    #[must_use]
    pub fn new(config: CumulativeConfig) -> Self {
        EvidenceTable {
            config,
            overflow: BTreeMap::new(),
            dangling: BTreeMap::new(),
            pad_hints: BTreeMap::new(),
            defer_hints: BTreeMap::new(),
            runs: 0,
            failures: 0,
            n_sites: 1,
        }
    }

    /// The table's configuration.
    #[must_use]
    pub fn config(&self) -> &CumulativeConfig {
        &self.config
    }

    /// Total runs folded in.
    #[must_use]
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Failed runs among them.
    #[must_use]
    pub fn failures(&self) -> usize {
        self.failures
    }

    /// Largest site population seen (`N` of the prior).
    #[must_use]
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// Sites with evidence in either family.
    #[must_use]
    pub fn sites_tracked(&self) -> usize {
        let mut sites: std::collections::BTreeSet<SiteHash> =
            self.overflow.keys().copied().collect();
        sites.extend(self.dangling.keys().copied());
        sites.len()
    }

    /// Notes one run's metadata without observations (used when a run's
    /// observations are routed elsewhere, e.g. to other shards).
    pub fn note_run(&mut self, failed: bool, n_sites: usize) {
        self.runs += 1;
        if failed {
            self.failures += 1;
        }
        self.n_sites = self.n_sites.max(n_sites);
    }

    /// Folds one overflow-criteria observation in.
    pub fn observe_overflow(&mut self, site: SiteHash, x: f64, y: bool) {
        let steps = self.config.integration_steps;
        self.overflow
            .entry(site)
            .or_insert_with(|| SiteEvidence::new(steps))
            .observe(x, y);
    }

    /// Folds one dangling-canary observation in.
    pub fn observe_dangling(&mut self, site: SiteHash, x: f64, y: bool) {
        let steps = self.config.integration_steps;
        self.dangling
            .entry(site)
            .or_insert_with(|| SiteEvidence::new(steps))
            .observe(x, y);
    }

    /// Records a pad hint (kept by maximum).
    pub fn hint_pad(&mut self, site: SiteHash, pad: u32) {
        let e = self.pad_hints.entry(site).or_insert(0);
        *e = (*e).max(pad);
    }

    /// Records a deferral hint (kept by per-pair maximum).
    pub fn hint_deferral(&mut self, pair: SitePair, ticks: u64) {
        let e = self.defer_hints.entry(pair).or_insert(0);
        *e = (*e).max(ticks);
    }

    /// Folds one whole [`RunSummary`] in.
    pub fn record_run(&mut self, summary: &RunSummary) {
        self.note_run(summary.failed, summary.n_sites);
        for obs in &summary.overflow_obs {
            self.observe_overflow(obs.site, obs.x, obs.y);
        }
        for obs in &summary.dangling_obs {
            self.observe_dangling(obs.site, obs.x, obs.y);
        }
        for &(site, pad) in &summary.pad_hints {
            self.hint_pad(site, pad);
        }
        for &(alloc, free, ticks) in &summary.defer_hints {
            self.hint_deferral(SitePair::new(alloc, free), ticks);
        }
    }

    /// Combines another table accumulated over a disjoint set of runs.
    /// Commutative, associative; any gossip/shard topology converges.
    ///
    /// # Panics
    ///
    /// Panics if the two tables were accumulated under different
    /// configurations — evidence is only combinable when every site was
    /// observed under the same grid, prior, and canary probability.
    pub fn merge(&mut self, other: &EvidenceTable) {
        assert_eq!(
            self.config, other.config,
            "cannot merge evidence accumulated under different configurations"
        );
        self.runs += other.runs;
        self.failures += other.failures;
        self.n_sites = self.n_sites.max(other.n_sites);
        for (site, evidence) in &other.overflow {
            match self.overflow.entry(*site) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(evidence.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut o) => o.get_mut().merge(evidence),
            }
        }
        for (site, evidence) in &other.dangling {
            match self.dangling.entry(*site) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(evidence.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut o) => o.get_mut().merge(evidence),
            }
        }
        for (&site, &pad) in &other.pad_hints {
            self.hint_pad(site, pad);
        }
        for (&pair, &ticks) in &other.defer_hints {
            self.hint_deferral(pair, ticks);
        }
    }

    /// Per-site overflow evidence in site order (snapshot export).
    pub fn overflow_evidence(&self) -> impl Iterator<Item = (SiteHash, &SiteEvidence)> {
        self.overflow.iter().map(|(&s, e)| (s, e))
    }

    /// Per-site dangling evidence in site order (snapshot export).
    pub fn dangling_evidence(&self) -> impl Iterator<Item = (SiteHash, &SiteEvidence)> {
        self.dangling.iter().map(|(&s, e)| (s, e))
    }

    /// Pad hints in site order (snapshot export).
    pub fn pad_hint_entries(&self) -> impl Iterator<Item = (SiteHash, u32)> + '_ {
        self.pad_hints.iter().map(|(&s, &p)| (s, p))
    }

    /// Deferral hints in pair order (snapshot export).
    pub fn defer_hint_entries(&self) -> impl Iterator<Item = (SitePair, u64)> + '_ {
        self.defer_hints.iter().map(|(&p, &t)| (p, t))
    }

    /// Installs restored overflow evidence for `site`, merging if evidence
    /// for the site already exists (so restore-into-fresh is exact and
    /// restore-into-existing keeps CRDT semantics).
    ///
    /// # Panics
    ///
    /// Panics if `evidence` integrates over a different grid than this
    /// table's configuration.
    pub fn insert_overflow_evidence(&mut self, site: SiteHash, evidence: SiteEvidence) {
        assert_eq!(
            evidence.steps(),
            self.config.integration_steps.max(2) & !1,
            "restored evidence grid does not match the table configuration"
        );
        match self.overflow.entry(site) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(evidence);
            }
            std::collections::btree_map::Entry::Occupied(mut o) => o.get_mut().merge(&evidence),
        }
    }

    /// Installs restored dangling evidence for `site` (see
    /// [`EvidenceTable::insert_overflow_evidence`]).
    ///
    /// # Panics
    ///
    /// Panics if `evidence` integrates over a different grid than this
    /// table's configuration.
    pub fn insert_dangling_evidence(&mut self, site: SiteHash, evidence: SiteEvidence) {
        assert_eq!(
            evidence.steps(),
            self.config.integration_steps.max(2) & !1,
            "restored evidence grid does not match the table configuration"
        );
        match self.dangling.entry(site) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(evidence);
            }
            std::collections::btree_map::Entry::Occupied(mut o) => o.get_mut().merge(&evidence),
        }
    }

    /// Verdicts for all sites with overflow evidence, using `n_sites` as
    /// the population (callers aggregating across shards pass the global
    /// maximum).
    #[must_use]
    pub fn overflow_verdicts_with(&self, n_sites: usize) -> Vec<Verdict> {
        self.overflow
            .iter()
            .map(|(&site, e)| e.verdict(site, n_sites, self.config.prior_c))
            .collect()
    }

    /// Verdicts for all sites with dangling evidence.
    #[must_use]
    pub fn dangling_verdicts_with(&self, n_sites: usize) -> Vec<Verdict> {
        self.dangling
            .iter()
            .map(|(&site, e)| e.verdict(site, n_sites, self.config.prior_c))
            .collect()
    }

    /// Verdicts under this table's own recorded site population.
    #[must_use]
    pub fn overflow_verdicts(&self) -> Vec<Verdict> {
        self.overflow_verdicts_with(self.n_sites)
    }

    /// Verdicts under this table's own recorded site population.
    #[must_use]
    pub fn dangling_verdicts(&self) -> Vec<Verdict> {
        self.dangling_verdicts_with(self.n_sites)
    }

    /// Patches for every flagged site with a matching hint, under site
    /// population `n_sites`. Deferral patches are emitted for every hinted
    /// `(alloc, free)` pair of a flagged alloc site.
    #[must_use]
    pub fn generate_patches_with(&self, n_sites: usize) -> PatchTable {
        let mut patches = PatchTable::new();
        for v in self.overflow_verdicts_with(n_sites) {
            if !v.flagged {
                continue;
            }
            if let Some(&pad) = self.pad_hints.get(&v.site) {
                patches.add_pad(v.site, pad);
            }
        }
        for v in self.dangling_verdicts_with(n_sites) {
            if !v.flagged {
                continue;
            }
            for (&pair, &ticks) in &self.defer_hints {
                if pair.alloc == v.site {
                    patches.add_deferral(pair, ticks);
                }
            }
        }
        patches
    }

    /// Patches under this table's own recorded site population.
    #[must_use]
    pub fn generate_patches(&self) -> PatchTable {
        self.generate_patches_with(self.n_sites)
    }

    /// Resident bytes of the evidence state — per site this is one grid of
    /// `steps + 1` doubles instead of an unbounded observation list.
    #[must_use]
    pub fn state_bytes(&self) -> usize {
        let per_site = std::mem::size_of::<SiteEvidence>()
            + (self.config.integration_steps + 1) * std::mem::size_of::<f64>();
        (self.overflow.len() + self.dangling.len()) * per_site
            + self.pad_hints.len() * 16
            + self.defer_hints.len() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cumulative::{classify, CumulativeIsolator, SiteObservation};

    const BUGGY: SiteHash = SiteHash::from_raw(0xB06);
    const CLEAN: SiteHash = SiteHash::from_raw(0xC1EA);

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
    }

    #[test]
    fn incremental_matches_batch_classifier() {
        // The same observation multiset, batch vs running-product.
        let obs: Vec<(f64, bool)> = (0..25)
            .map(|i| (0.1 + 0.8 * (i as f64 / 25.0), i % 3 != 0))
            .collect();
        let config = CumulativeConfig::default();
        let batch = classify(BUGGY, &obs, 250, &config);
        let mut e = SiteEvidence::new(config.integration_steps);
        for &(x, y) in &obs {
            e.observe(x, y);
        }
        let inc = e.verdict(BUGGY, 250, config.prior_c);
        assert!(close(batch.l0, inc.l0), "{} vs {}", batch.l0, inc.l0);
        assert!(close(batch.l1, inc.l1), "{} vs {}", batch.l1, inc.l1);
        assert_eq!(batch.flagged, inc.flagged);
        assert_eq!(batch.observations, inc.observations);
    }

    #[test]
    fn merge_is_commutative_and_order_insensitive() {
        let obs: Vec<(f64, bool)> = (0..30).map(|i| (0.3, i % 4 == 0)).collect();
        let mut whole = SiteEvidence::new(64);
        for &(x, y) in &obs {
            whole.observe(x, y);
        }
        // Split 3 ways, merge in a different order.
        let mut parts = [
            SiteEvidence::new(64),
            SiteEvidence::new(64),
            SiteEvidence::new(64),
        ];
        for (i, &(x, y)) in obs.iter().enumerate() {
            parts[i % 3].observe(x, y);
        }
        let mut ba = parts[2].clone();
        ba.merge(&parts[0]);
        ba.merge(&parts[1]);
        assert_eq!(ba.observations(), whole.observations());
        assert!(close(ba.l0(), whole.l0()));
        assert!(close(ba.l1(), whole.l1()));
    }

    #[test]
    #[should_panic(expected = "different integration grids")]
    fn merge_rejects_mismatched_grids() {
        let mut a = SiteEvidence::new(64);
        a.merge(&SiteEvidence::new(128));
    }

    #[test]
    #[should_panic(expected = "different configurations")]
    fn table_merge_rejects_mismatched_configs() {
        // Even with no common site, mixing configurations must fail at
        // the merge, not at some later collision.
        let mut a = EvidenceTable::new(CumulativeConfig {
            integration_steps: 64,
            ..CumulativeConfig::default()
        });
        let b = EvidenceTable::new(CumulativeConfig {
            integration_steps: 512,
            ..CumulativeConfig::default()
        });
        a.merge(&b);
    }

    #[test]
    fn table_matches_batch_isolator_end_to_end() {
        // Feed identical run streams to the batch isolator and the
        // mergeable table; verdicts and generated patches must agree.
        let config = CumulativeConfig::default();
        let mut batch = CumulativeIsolator::new(config);
        let mut table = EvidenceTable::new(config);
        for run in 0..20 {
            let mut summary = RunSummary {
                failed: true,
                n_sites: 100,
                ..RunSummary::default()
            };
            summary.overflow_obs.push(SiteObservation {
                site: BUGGY,
                x: 0.3,
                y: true,
            });
            summary.dangling_obs.push(SiteObservation {
                site: CLEAN,
                x: 0.5,
                y: run % 2 == 0,
            });
            summary.pad_hints.push((BUGGY, 24));
            summary
                .defer_hints
                .push((CLEAN, SiteHash::from_raw(0xF), 40));
            batch.record_run(&summary);
            table.record_run(&summary);
        }
        assert_eq!(table.runs(), batch.runs());
        assert_eq!(table.failures(), batch.failures());
        let bv = batch.overflow_verdicts();
        let tv = table.overflow_verdicts();
        assert_eq!(bv.len(), tv.len());
        for (b, t) in bv.iter().zip(&tv) {
            assert_eq!(b.site, t.site);
            assert_eq!(b.flagged, t.flagged);
            assert!(close(b.ratio, t.ratio), "{} vs {}", b.ratio, t.ratio);
        }
        assert_eq!(table.generate_patches(), batch.generate_patches());
        assert_eq!(table.generate_patches().pad_for(BUGGY), 24);
    }

    #[test]
    fn sharded_tables_merge_to_the_sequential_state() {
        // Partition a run stream across three tables (as shards would),
        // merge, and compare against sequential accumulation.
        let config = CumulativeConfig {
            integration_steps: 64,
            ..CumulativeConfig::default()
        };
        let mut sequential = EvidenceTable::new(config);
        let mut shards = [
            EvidenceTable::new(config),
            EvidenceTable::new(config),
            EvidenceTable::new(config),
        ];
        for run in 0..30u32 {
            let mut summary = RunSummary {
                failed: run % 2 == 0,
                n_sites: 50 + (run as usize % 7),
                ..RunSummary::default()
            };
            summary.overflow_obs.push(SiteObservation {
                site: SiteHash::from_raw(run % 5),
                x: 0.2 + f64::from(run % 3) * 0.1,
                y: run % 2 == 0,
            });
            summary.pad_hints.push((SiteHash::from_raw(run % 5), run));
            sequential.record_run(&summary);
            shards[(run as usize) % 3].record_run(&summary);
        }
        let mut merged = shards[1].clone();
        merged.merge(&shards[2]);
        merged.merge(&shards[0]);
        assert_eq!(merged.runs(), sequential.runs());
        assert_eq!(merged.failures(), sequential.failures());
        assert_eq!(merged.n_sites(), sequential.n_sites());
        assert_eq!(merged.generate_patches(), sequential.generate_patches());
        let a = merged.overflow_verdicts();
        let b = sequential.overflow_verdicts();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.site, y.site);
            assert_eq!(x.flagged, y.flagged);
            assert!(close(x.ratio, y.ratio));
        }
    }

    /// The durability contract: raw-parts round trips are *bit*-exact, so
    /// a snapshot/restore cycle cannot drift a ratio even in the last ulp.
    #[test]
    fn raw_parts_round_trip_is_bit_exact() {
        let mut e = SiteEvidence::new(64);
        for i in 0..23 {
            e.observe([0.25, 0.5, 0.75][i % 3], i % 4 != 0);
        }
        let (obs, l0, grid) = e.raw_parts();
        let back = SiteEvidence::from_raw_parts(obs, l0, grid.to_vec());
        assert_eq!(back, e);
        assert_eq!(back.l0().to_bits(), e.l0().to_bits());
        assert_eq!(back.l1().to_bits(), e.l1().to_bits());

        // Table-level: export every entry, rebuild a fresh table, compare.
        let config = CumulativeConfig {
            integration_steps: 64,
            ..CumulativeConfig::default()
        };
        let mut table = EvidenceTable::new(config);
        for run in 0..40u32 {
            let mut summary = RunSummary {
                failed: run % 2 == 0,
                n_sites: 64,
                ..RunSummary::default()
            };
            summary.overflow_obs.push(SiteObservation {
                site: SiteHash::from_raw(run % 5),
                x: 0.25,
                y: run % 3 == 0,
            });
            summary.dangling_obs.push(SiteObservation {
                site: SiteHash::from_raw(100 + run % 3),
                x: 0.5,
                y: true,
            });
            summary.pad_hints.push((SiteHash::from_raw(run % 5), run));
            summary
                .defer_hints
                .push((SiteHash::from_raw(100 + run % 3), SiteHash::from_raw(7), 9));
            table.record_run(&summary);
        }
        let mut restored = EvidenceTable::new(config);
        for (site, e) in table.overflow_evidence() {
            let (obs, l0, grid) = e.raw_parts();
            restored.insert_overflow_evidence(
                site,
                SiteEvidence::from_raw_parts(obs, l0, grid.to_vec()),
            );
        }
        for (site, e) in table.dangling_evidence() {
            let (obs, l0, grid) = e.raw_parts();
            restored.insert_dangling_evidence(
                site,
                SiteEvidence::from_raw_parts(obs, l0, grid.to_vec()),
            );
        }
        for (site, pad) in table.pad_hint_entries() {
            restored.hint_pad(site, pad);
        }
        for (pair, ticks) in table.defer_hint_entries() {
            restored.hint_deferral(pair, ticks);
        }
        // Evidence, hints, and therefore verdicts and patches all match
        // bit-for-bit (run counters are service-level state, not table
        // state, in the fleet's usage).
        assert_eq!(restored.generate_patches(), table.generate_patches());
        let a = restored.dangling_verdicts_with(64);
        let b = table.dangling_verdicts_with(64);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.site, y.site);
            assert_eq!(x.ratio.to_bits(), y.ratio.to_bits(), "ratio drifted");
        }
    }

    #[test]
    #[should_panic(expected = "not steps + 1")]
    fn from_raw_parts_rejects_malformed_grids() {
        let _ = SiteEvidence::from_raw_parts(1, 0.5, vec![1.0; 4]);
    }

    #[test]
    fn state_stays_compact() {
        let mut table = EvidenceTable::new(CumulativeConfig {
            integration_steps: 64,
            ..CumulativeConfig::default()
        });
        for run in 0..1000u32 {
            let mut summary = RunSummary {
                failed: true,
                n_sites: 40,
                ..RunSummary::default()
            };
            summary.dangling_obs.push(SiteObservation {
                site: SiteHash::from_raw(run % 8),
                x: 0.5,
                y: true,
            });
            table.record_run(&summary);
        }
        // 1000 runs over 8 sites: batch storage would hold 1000
        // observations; the grid form is bounded by sites × grid.
        assert_eq!(table.runs(), 1000);
        assert!(table.state_bytes() < 8 * (64 + 2) * 8 + 1024);
        assert_eq!(table.sites_tracked(), 8);
    }
}
