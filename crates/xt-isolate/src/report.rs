//! Isolation results and their conversion to runtime patches.

use std::error::Error;
use std::fmt;

use xt_alloc::{AllocTime, ObjectId, SiteHash, SitePair};
use xt_patch::PatchTable;

/// An isolated buffer overflow: culprit object, extent, and the pad that
/// contains it (§4.1, §6.1).
#[derive(Clone, Debug, PartialEq)]
pub struct OverflowReport {
    /// The overflowing object.
    pub culprit_id: ObjectId,
    /// Allocation site of the culprit — the key of the pad-table entry.
    pub alloc_site: SiteHash,
    /// Bytes the culprit requested.
    pub requested: u32,
    /// Maximum observed distance from the culprit's base to the end of the
    /// corruption, across all images.
    pub max_extent: u64,
    /// Pad bytes needed to contain the overflow:
    /// `max_extent − requested`.
    pub pad: u32,
    /// Confidence score `1 − (1/256)^S` over the total detected
    /// overflow-string length `S`.
    pub score: f64,
    /// Total corrupted bytes supporting this culprit across all images.
    pub evidence_bytes: u64,
}

/// An isolated dangling-pointer error (§4.2, §6.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DanglingReport {
    /// The prematurely freed object.
    pub object_id: ObjectId,
    /// Where it was allocated.
    pub alloc_site: SiteHash,
    /// Where it was (prematurely) freed.
    pub free_site: SiteHash,
    /// When it was freed (`τ`).
    pub free_time: AllocTime,
    /// The last allocation time observed (`T`).
    pub last_alloc_time: AllocTime,
    /// Lifetime extension: `2 × (T − τ) + 1` ticks (§6.2).
    pub deferral: u64,
}

impl DanglingReport {
    /// Computes the paper's deferral for a free at `free_time` observed to
    /// be premature at `last_alloc_time`: `2 × (T − τ) + 1`.
    #[must_use]
    pub fn paper_deferral(free_time: AllocTime, last_alloc_time: AllocTime) -> u64 {
        2 * last_alloc_time.since(free_time) + 1
    }
}

/// The combined result of one isolation pass.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IsolationReport {
    /// Overflow culprits, highest score first.
    pub overflows: Vec<OverflowReport>,
    /// Dangling-pointer overwrites.
    pub dangling: Vec<DanglingReport>,
}

impl IsolationReport {
    /// `true` if nothing was isolated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.overflows.is_empty() && self.dangling.is_empty()
    }

    /// Generates the runtime patches (§6.1–6.2): a pad for the
    /// *highest-ranked* overflow culprit with a non-zero score, plus a
    /// deferral for every isolated dangling error.
    #[must_use]
    pub fn to_patches(&self) -> PatchTable {
        let mut patches = PatchTable::new();
        if let Some(top) = self
            .overflows
            .iter()
            .filter(|o| o.score > 0.0 && o.pad > 0)
            .max_by(|a, b| {
                a.score
                    .partial_cmp(&b.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.evidence_bytes.cmp(&b.evidence_bytes))
            })
        {
            patches.add_pad(top.alloc_site, top.pad);
        }
        for d in &self.dangling {
            patches.add_deferral(SitePair::new(d.alloc_site, d.free_site), d.deferral);
        }
        patches
    }
}

impl fmt::Display for IsolationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "no errors isolated");
        }
        for o in &self.overflows {
            writeln!(
                f,
                "overflow: {} from {} (requested {}, extent {}, pad {}, score {:.6})",
                o.culprit_id, o.alloc_site, o.requested, o.max_extent, o.pad, o.score
            )?;
        }
        for d in &self.dangling {
            writeln!(
                f,
                "dangling: {} {} freed at {} ({}), deferral {}",
                d.object_id, d.alloc_site, d.free_time, d.free_site, d.deferral
            )?;
        }
        Ok(())
    }
}

/// Why isolation could not run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IsolationError {
    /// Fewer than two heap images were supplied.
    NotEnoughImages {
        /// Number of images supplied.
        got: usize,
    },
    /// The images disagree on configuration (multiplier, fill probability)
    /// and cannot come from replicas/replays of one execution.
    MismatchedImages,
}

impl fmt::Display for IsolationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsolationError::NotEnoughImages { got } => {
                write!(
                    f,
                    "iterative isolation needs at least 2 heap images, got {got}"
                )
            }
            IsolationError::MismatchedImages => {
                write!(f, "heap images come from differently-configured heaps")
            }
        }
    }
}

impl Error for IsolationError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn overflow(site: u32, pad: u32, score: f64) -> OverflowReport {
        OverflowReport {
            culprit_id: ObjectId::from_raw(1),
            alloc_site: SiteHash::from_raw(site),
            requested: 16,
            max_extent: 16 + u64::from(pad),
            pad,
            score,
            evidence_bytes: u64::from(pad),
        }
    }

    #[test]
    fn paper_deferral_formula() {
        // §6.2's example: freed 10 allocations too soon before a crash at
        // T: extension = 2×(T−τ)+1 = 21.
        let tau = AllocTime::from_raw(1010);
        let t = AllocTime::from_raw(1020);
        assert_eq!(DanglingReport::paper_deferral(tau, t), 21);
    }

    #[test]
    fn to_patches_takes_top_ranked_overflow_only() {
        let report = IsolationReport {
            overflows: vec![overflow(1, 6, 0.5), overflow(2, 8, 0.9)],
            dangling: vec![],
        };
        let patches = report.to_patches();
        assert_eq!(patches.pad_for(SiteHash::from_raw(2)), 8);
        assert_eq!(patches.pad_for(SiteHash::from_raw(1)), 0, "only the top");
    }

    #[test]
    fn to_patches_skips_zero_scores() {
        let report = IsolationReport {
            overflows: vec![overflow(1, 6, 0.0)],
            dangling: vec![],
        };
        assert!(report.to_patches().is_empty());
    }

    #[test]
    fn to_patches_defers_all_dangling() {
        let report = IsolationReport {
            overflows: vec![],
            dangling: vec![DanglingReport {
                object_id: ObjectId::from_raw(3),
                alloc_site: SiteHash::from_raw(0xA),
                free_site: SiteHash::from_raw(0xF),
                free_time: AllocTime::from_raw(10),
                last_alloc_time: AllocTime::from_raw(20),
                deferral: 21,
            }],
        };
        let patches = report.to_patches();
        assert_eq!(
            patches.deferral_for(SitePair::new(
                SiteHash::from_raw(0xA),
                SiteHash::from_raw(0xF)
            )),
            21
        );
    }

    #[test]
    fn display_covers_both_kinds() {
        let mut report = IsolationReport::default();
        assert_eq!(report.to_string(), "no errors isolated");
        report.overflows.push(overflow(1, 6, 0.99));
        assert!(report.to_string().contains("overflow"));
    }

    #[test]
    fn errors_display() {
        assert!(IsolationError::NotEnoughImages { got: 1 }
            .to_string()
            .contains("got 1"));
        assert!(!IsolationError::MismatchedImages.to_string().is_empty());
    }
}
