//! Property tests for the isolation algorithms: classifier sanity and
//! robustness of iterative isolation against false positives.

use proptest::prelude::*;

use xt_alloc::{Heap, Rng, SiteHash};
use xt_diefast::{DieFastConfig, DieFastHeap};
use xt_image::HeapImage;
use xt_isolate::cumulative::{classify, likelihood_h0, likelihood_h1, CumulativeConfig};
use xt_isolate::iterative::isolate;
use xt_isolate::theory;

fn observations() -> impl Strategy<Value = Vec<(f64, bool)>> {
    proptest::collection::vec((0.0f64..=1.0, any::<bool>()), 1..40)
}

proptest! {
    /// Likelihoods are probabilities.
    #[test]
    fn likelihoods_are_probabilities(obs in observations()) {
        let l0 = likelihood_h0(&obs);
        let l1 = likelihood_h1(&obs, 256);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&l0));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&l1));
    }

    /// The H1 integral is insensitive to the integration resolution
    /// (Simpson convergence).
    #[test]
    fn integral_converges(obs in observations()) {
        let coarse = likelihood_h1(&obs, 128);
        let fine = likelihood_h1(&obs, 2048);
        prop_assert!((coarse - fine).abs() < 1e-6, "coarse {coarse} fine {fine}");
    }

    /// Chance-consistent sites (Y drawn at rate X) essentially never get
    /// flagged at realistic site counts.
    #[test]
    fn classifier_rejects_chance(seed in 0u64..2000, x in 0.05f64..0.95, n in 5usize..40) {
        let mut rng = Rng::new(seed);
        let obs: Vec<(f64, bool)> = (0..n).map(|_| (x, rng.chance(x))).collect();
        let v = classify(SiteHash::from_raw(1), &obs, 200, &CumulativeConfig::default());
        prop_assert!(!v.flagged, "chance data flagged with ratio {}", v.ratio);
    }

    /// Perfectly correlated evidence is flagged once there is enough of it
    /// (and the ratio grows monotonically with more evidence).
    #[test]
    fn classifier_accepts_causation(x in 0.1f64..0.6) {
        let config = CumulativeConfig::default();
        let mut last_ratio = 0.0;
        let mut flagged_at = None;
        for n in 1..=30usize {
            let obs: Vec<(f64, bool)> = (0..n).map(|_| (x, true)).collect();
            let v = classify(SiteHash::from_raw(1), &obs, 100, &config);
            prop_assert!(v.ratio + 1e-9 >= last_ratio, "ratio not monotone");
            last_ratio = v.ratio;
            if v.flagged && flagged_at.is_none() {
                flagged_at = Some(n);
            }
        }
        prop_assert!(flagged_at.is_some(), "never flagged at x = {x}");
    }

    /// Theorem formulas: probabilities in range and monotone in k.
    #[test]
    fn theory_bounds_behave(k in 1u32..8, s in 1.0f64..10.0, h in 20.0f64..1000.0, b in 1u32..16) {
        let p1 = theory::p_identical_overflow(k, s, h);
        let p1k = theory::p_identical_overflow(k + 1, s, h);
        prop_assert!((0.0..=1.0).contains(&p1));
        prop_assert!(p1k <= p1, "identical-overflow bound not shrinking in k");
        let p2 = theory::p_missed_overflow(2.0, k, b);
        let p2k = theory::p_missed_overflow(2.0, k + 1, b);
        prop_assert!(p2 > 0.0 && p2 <= 1.0 + 1e-9);
        prop_assert!(p2k <= p2);
        let e = theory::expected_culprits(h, k);
        prop_assert!(e >= 0.0);
    }

    /// Clean scripted runs (no injected errors) isolate nothing, across
    /// arbitrary scripts and image counts — the empirical false-positive
    /// check behind Theorems 1 and 3.
    #[test]
    fn clean_runs_have_no_false_positives(
        script_seed in 0u64..2000,
        k in 2usize..5,
        steps in 20usize..120,
    ) {
        let mut images = Vec::with_capacity(k);
        for i in 0..k {
            let mut heap = DieFastHeap::new(DieFastConfig::with_seed(
                script_seed.wrapping_mul(31).wrapping_add(i as u64),
            ));
            // Identical logical script in every replica.
            let mut script = Rng::new(script_seed);
            let mut live: Vec<xt_arena::Addr> = Vec::new();
            for step in 0..steps {
                if !live.is_empty() && script.chance(0.4) {
                    let victim = live.swap_remove(script.below_usize(live.len()));
                    heap.free(victim, SiteHash::from_raw(0xF));
                } else {
                    let size = 16 + script.below_usize(100);
                    let p = heap.malloc(size, SiteHash::from_raw(step as u32 % 7)).unwrap();
                    heap.arena_mut().write_u64(p, step as u64).unwrap();
                    live.push(p);
                }
            }
            images.push(HeapImage::capture(&heap));
        }
        let report = isolate(&images).unwrap();
        prop_assert!(report.is_empty(), "false positive: {report}");
    }
}
