//! The persistent replica-pool executor: replicated mode (§3.4, Fig. 5) as
//! a long-lived service instead of a per-input ceremony.
//!
//! The paper's replicas are *processes that keep running*: inputs are
//! broadcast to all of them, outputs are voted on, and a discovered error
//! is patched into the survivors without restarting anything. The original
//! `run_replicated` tore the whole replica set down — threads, allocator
//! stacks, page tables — after every single input, a cost real deployments
//! never pay. [`ReplicaPool`] keeps the set alive:
//!
//! * **Persistent workers.** Each replica is one long-lived thread owning a
//!   [`ReusableStack`]: its simulated address space is *reset* between
//!   inputs (leaf tables and slab capacity recycled, see
//!   `xt_arena::Arena::reset`), not rebuilt. A batch of K inputs costs K
//!   executions per worker — not K pool setups.
//! * **Pipelined broadcast.** [`ReplicaPool::submit`] enqueues an input on
//!   every worker's channel and returns immediately; workers drain their
//!   queues back-to-back, so replica 0 can be three inputs ahead of a slow
//!   replica 2. [`ReplicaPool::next_outcome`] completes jobs in submission
//!   order.
//! * **Streaming vote.** Workers publish their output the moment the
//!   workload returns — *before* heap-image capture — and the
//!   [`StreamingVoter`] folds it into per-replica digests. A quorum of
//!   matching digests yields a verdict while stragglers are still
//!   executing; their images are still collected afterwards, because
//!   isolation wants every replica's heap (§4).
//! * **Hot patch reload.** [`ReplicaPool::load_epoch`] joins a fleet
//!   [`PatchEpoch`] into the pool's live table between inputs, and (by
//!   default) patches isolated from the pool's own failures are folded in
//!   the same way — the running workers pick them up on their next input,
//!   no restart.
//!
//! Determinism: a job's outcome depends only on (config seeds, seed
//! index, input, fault, patch table at submit time) — never on thread
//! scheduling. The patch table rides inside each job's broadcast message,
//! the vote partition is computed over the full replica set, and isolation
//! sees images in replica order. Two pools with identical configs fed
//! identical submissions produce byte-identical outcomes (pinned by the
//! determinism tests); only the [`VoteTiming`] wall-clock observations
//! vary. [`ReplicaPool::submit`] uses the pool-local job index as the seed
//! index; [`ReplicaPool::submit_seeded`] lets a caller that owns a global
//! submission order — the multi-pool [`PoolFrontend`] — pass its own, so a
//! job's outcome is independent of which pool of a sharded front-end it
//! landed on.
//!
//! One pool serves one caller thread. For many concurrent submitters,
//! several pools, and non-blocking completion tickets, see
//! [`PoolFrontend`](crate::frontend::PoolFrontend) — the server front-end
//! layered on this type.
//!
//! [`PoolFrontend`]: crate::frontend::PoolFrontend

use std::collections::VecDeque;
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::{Scope, ScopedJoinHandle};
use std::time::{Duration, Instant};

use xt_diefast::DieFastConfig;
use xt_faults::FaultSpec;
use xt_image::HeapImage;
use xt_isolate::iterative::{isolate_with, IsolateOptions};
use xt_obs::{Histogram, Registry};
use xt_patch::{PatchEpoch, PatchTable};
use xt_workloads::{Workload, WorkloadInput};

use crate::replicated::{ReplicaSummary, ReplicatedOutcome};
use crate::runner::{ReusableStack, RunConfig, RunRecord};
use crate::voter::{StreamingVoter, VoteResult};

/// Configuration for a [`ReplicaPool`].
#[derive(Clone, Debug)]
pub struct PoolConfig {
    /// Number of persistent replica workers (the paper's experiments
    /// use 3).
    pub replicas: usize,
    /// Base seed; worker `i` running job `j` derives its heap seed from
    /// `(base_seed, i, j)`. Job 0 uses exactly the seeds the one-shot
    /// `run_replicated` always used.
    pub base_seed: u64,
    /// DieFast configuration shared by all replicas (`p = 1`).
    pub diefast: DieFastConfig,
    /// Isolation tuning.
    pub options: IsolateOptions,
    /// Stop a replica at its first DieFast signal, so its heap image is
    /// captured *at detection time* — the paper's signal-handler dump
    /// (§3). Without this, continuing execution can reallocate the
    /// corrupted slot and destroy the canary evidence isolation needs;
    /// with it, a failing replica behaves like a crashing process whose
    /// core is dumped on the spot, while healthy replicas still run to
    /// completion and out-vote it.
    pub halt_on_signal: bool,
    /// Fold patches isolated from this pool's own failures back into the
    /// live table, so later submissions run corrected (§6.1's deployment
    /// loop). Disable for measurement runs that must keep re-observing the
    /// same fault.
    pub auto_patch: bool,
    /// Bench/test instrumentation: delay one worker before every
    /// execution, making it a reproducible straggler for early-exit vote
    /// measurements.
    pub straggler: Option<Straggler>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            replicas: 3,
            base_seed: 0x2E11_11CA,
            diefast: DieFastConfig::with_seed(0),
            options: IsolateOptions::default(),
            halt_on_signal: true,
            auto_patch: true,
            straggler: None,
        }
    }
}

/// One deliberately slowed replica (bench/test instrumentation).
#[derive(Clone, Copy, Debug)]
pub struct Straggler {
    /// Worker index to slow down.
    pub replica: usize,
    /// Sleep inserted before each of its executions.
    pub delay: Duration,
}

/// Wall-clock observations of one job's vote (not part of the
/// deterministic outcome — scheduling moves these, never the verdict).
#[derive(Clone, Copy, Debug)]
pub struct VoteTiming {
    /// Replicas that had not yet produced output when the streaming quorum
    /// formed. Nonzero means the vote genuinely exited early.
    pub outstanding_at_verdict: usize,
    /// Submission → quorum verdict.
    pub verdict_latency: Duration,
    /// Submission → all replicas done (images captured, job finalized).
    pub full_latency: Duration,
}

/// One finalized job: the classic [`ReplicatedOutcome`] plus pool
/// bookkeeping.
#[derive(Clone, Debug)]
pub struct PoolOutcome {
    /// The job id [`ReplicaPool::submit`] returned.
    pub job: u64,
    /// Vote, patches, isolation report, and per-replica digests — the same
    /// shape `run_replicated` returns.
    pub outcome: ReplicatedOutcome,
    /// Vote timing observations.
    pub timing: VoteTiming,
}

impl PoolOutcome {
    /// Canonical digest of the deterministic surface: the job's global
    /// sequence number folded over
    /// [`ReplicatedOutcome::deterministic_digest`]. Timing is excluded —
    /// wall-clock observations are exactly what determinism pins must
    /// ignore. This is what the network front door ships and compares
    /// instead of whole outcomes.
    #[must_use]
    pub fn deterministic_digest(&self) -> u128 {
        crate::voter::digest_chunk(self.outcome.deterministic_digest(), &self.job.to_le_bytes())
    }
}

/// The streaming voter's early answer for one job, surfaced by
/// [`ReplicaPool::wait_verdict`].
#[derive(Clone, Debug)]
pub struct EarlyVerdict {
    /// The agreed output digest.
    pub digest: u128,
    /// Replicas in the quorum.
    pub agreeing: Vec<usize>,
    /// Replicas still running when the quorum formed.
    pub outstanding: usize,
    /// The agreed output bytes (what the paper's voter would release to
    /// the user at this moment).
    pub output: Vec<u8>,
}

/// What the broadcast channel carries to each worker.
enum WorkerMsg {
    Exec {
        job: u64,
        /// Job index the worker derives its heap seed from. Equal to `job`
        /// for service jobs; an isolation replay reuses the *original*
        /// job's index so every worker re-executes its exact run.
        seed_job: u64,
        /// Shared, not cloned: broadcast cost is N `Arc` bumps, not N
        /// payload copies.
        input: Arc<WorkloadInput>,
        fault: Option<FaultSpec>,
        /// Malloc breakpoint for isolation replays (§3.4): halt at the
        /// detection clock so all images align at one logical time.
        breakpoint: Option<xt_alloc::AllocTime>,
        /// The patch table in effect for this job, captured at submit time
        /// so patch visibility is a function of submission order, not
        /// scheduling.
        patches: Arc<PatchTable>,
    },
}

/// What workers send back.
enum Event {
    /// The workload returned; its output is ready for the voter. Sent
    /// *before* heap-image capture.
    Output {
        job: u64,
        worker: usize,
        output: Vec<u8>,
    },
    /// Image captured, stack torn down, arena recycled.
    Done {
        job: u64,
        worker: usize,
        record: Box<RunRecord>,
    },
}

/// Heap seed for `worker` running `job` (job 0 reproduces the historical
/// `run_replicated` seeds).
fn replica_seed(base: u64, worker: usize, job: u64) -> u64 {
    base.wrapping_add((worker as u64 + 1).wrapping_mul(0xA5A5_1234_9E37_79B9))
        .wrapping_add(job.wrapping_mul(0xD1B5_4A32_D192_ED03))
}

/// One job's in-flight state on the collector side.
struct JobState {
    job: u64,
    /// Seed index the replicas derive their heap seeds from — equal to
    /// `job` for plain [`ReplicaPool::submit`] calls, caller-supplied for
    /// [`ReplicaPool::submit_seeded`].
    seed_job: u64,
    submitted_at: Instant,
    input: Arc<WorkloadInput>,
    fault: Option<FaultSpec>,
    patches: Arc<PatchTable>,
    voter: StreamingVoter,
    outputs: Vec<Option<Vec<u8>>>,
    records: Vec<Option<Box<RunRecord>>>,
    done: usize,
    verdict_at: Option<(Instant, usize)>,
}

impl JobState {
    fn new(
        job: u64,
        seed_job: u64,
        input: Arc<WorkloadInput>,
        fault: Option<FaultSpec>,
        patches: Arc<PatchTable>,
        replicas: usize,
    ) -> Self {
        JobState {
            job,
            seed_job,
            submitted_at: Instant::now(),
            input,
            fault,
            patches,
            voter: StreamingVoter::new(replicas),
            outputs: vec![None; replicas],
            records: (0..replicas).map(|_| None).collect(),
            done: 0,
            verdict_at: None,
        }
    }

    fn complete(&self) -> bool {
        self.done == self.records.len()
    }
}

/// The persistent replica-pool executor. Created inside a
/// [`std::thread::scope`] so workers may borrow the workload:
///
/// ```
/// use exterminator::pool::{PoolConfig, ReplicaPool};
/// use xt_patch::PatchTable;
/// use xt_workloads::{EspressoLike, WorkloadInput};
///
/// let workload = EspressoLike::new();
/// std::thread::scope(|scope| {
///     let mut pool =
///         ReplicaPool::scoped(scope, &workload, PoolConfig::default(), PatchTable::new());
///     // One pool, many inputs: no replica is ever respawned.
///     for seed in 0..3 {
///         let out = pool.run_one(&WorkloadInput::with_seed(seed), None);
///         assert!(out.outcome.vote.unanimous());
///     }
///     pool.shutdown();
/// });
/// ```
pub struct ReplicaPool<'scope> {
    txs: Vec<Sender<WorkerMsg>>,
    events: Receiver<Event>,
    handles: Vec<ScopedJoinHandle<'scope, ()>>,
    config: PoolConfig,
    patches: PatchTable,
    epoch: u64,
    next_job: u64,
    inflight: VecDeque<JobState>,
    obs: Arc<Registry>,
}

impl<'scope> ReplicaPool<'scope> {
    /// Spawns `config.replicas` persistent workers over `workload`, with
    /// `patches` as the initially loaded table. Capture-stage timings land
    /// in a pool-private registry; see [`ReplicaPool::observability`].
    pub fn scoped<'env, W>(
        scope: &'scope Scope<'scope, 'env>,
        workload: &'env W,
        config: PoolConfig,
        patches: PatchTable,
    ) -> ReplicaPool<'scope>
    where
        W: Workload + Sync + ?Sized,
    {
        ReplicaPool::scoped_with_obs(scope, workload, config, patches, Registry::new())
    }

    /// [`ReplicaPool::scoped`] recording into a caller-supplied registry —
    /// how the [`PoolFrontend`](crate::frontend::PoolFrontend) folds every
    /// pool's `pool/capture` histogram into the one fleet-visible metrics
    /// snapshot (registries dedup instruments by name, so all pools share
    /// one aggregate histogram).
    pub fn scoped_with_obs<'env, W>(
        scope: &'scope Scope<'scope, 'env>,
        workload: &'env W,
        config: PoolConfig,
        patches: PatchTable,
        obs: Arc<Registry>,
    ) -> ReplicaPool<'scope>
    where
        W: Workload + Sync + ?Sized,
    {
        let capture_hist = obs.histogram("pool/capture");
        let n = config.replicas.max(1);
        let (event_tx, events) = mpsc::channel();
        let mut txs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for worker in 0..n {
            let (tx, rx) = mpsc::channel::<WorkerMsg>();
            let event_tx = event_tx.clone();
            let base_seed = config.base_seed;
            let diefast = config.diefast.clone();
            let halt_on_signal = config.halt_on_signal;
            let delay = config
                .straggler
                .filter(|s| s.replica == worker)
                .map(|s| s.delay);
            let capture_hist = Arc::clone(&capture_hist);
            handles.push(scope.spawn(move || {
                worker_loop(
                    workload,
                    worker,
                    base_seed,
                    &diefast,
                    halt_on_signal,
                    delay,
                    &rx,
                    &event_tx,
                    &capture_hist,
                );
            }));
            txs.push(tx);
        }
        ReplicaPool {
            txs,
            events,
            handles,
            config,
            patches,
            epoch: 0,
            next_job: 0,
            inflight: VecDeque::new(),
            obs,
        }
    }

    /// The pool's latency instruments — currently `pool/capture`, the
    /// per-run heap-image capture stage (workers retain each run's image
    /// as the base for incremental capture of the next, so this histogram
    /// is where the dirty-page splicing shows up operationally).
    /// Observability only: nothing here feeds outcome bytes or
    /// deterministic digests.
    #[must_use]
    pub fn observability(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// Number of replica workers.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.txs.len()
    }

    /// The patch table new submissions will run under.
    #[must_use]
    pub fn patches(&self) -> &PatchTable {
        &self.patches
    }

    /// The highest fleet epoch loaded so far.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Joins `table` into the live patch table (lattice merge). Running
    /// workers pick it up with the next submitted input — no restart.
    pub fn load_patches(&mut self, table: &PatchTable) {
        self.patches.merge(table);
    }

    /// Loads a fleet [`PatchEpoch`] if it is newer than the last one
    /// loaded. Returns `true` if the live table advanced.
    pub fn load_epoch(&mut self, epoch: &PatchEpoch) -> bool {
        if epoch.number <= self.epoch {
            return false;
        }
        self.epoch = epoch.number;
        self.patches.merge(&epoch.patches);
        true
    }

    /// Broadcasts one input to every worker and returns its job id without
    /// waiting. Jobs complete in submission order via
    /// [`ReplicaPool::next_outcome`].
    pub fn submit(&mut self, input: &WorkloadInput, fault: Option<FaultSpec>) -> u64 {
        let seed_index = self.next_job;
        self.submit_seeded(input, fault, seed_index)
    }

    /// [`ReplicaPool::submit`] with a caller-chosen seed index: replica `i`
    /// derives its heap seed from `(base_seed, i, seed_index)` instead of
    /// the pool-local job counter. This is the submission half of the
    /// split API the multi-pool [`PoolFrontend`] stands on — a front-end
    /// assigns one global sequence across K pools, so a job's outcome is a
    /// function of `(input, fault, seed_index, patches)` alone, identical
    /// no matter which pool executed it.
    ///
    /// [`PoolFrontend`]: crate::frontend::PoolFrontend
    pub fn submit_seeded(
        &mut self,
        input: &WorkloadInput,
        fault: Option<FaultSpec>,
        seed_index: u64,
    ) -> u64 {
        // One real copy of the input per job; the broadcast itself is N
        // reference bumps.
        self.submit_shared(Arc::new(input.clone()), fault, seed_index)
    }

    /// [`ReplicaPool::submit_seeded`] for a caller that already holds the
    /// input in an `Arc` (the front-end's queue does): no further copy of
    /// the payload is made.
    pub fn submit_shared(
        &mut self,
        input: Arc<WorkloadInput>,
        fault: Option<FaultSpec>,
        seed_index: u64,
    ) -> u64 {
        let job = self.next_job;
        self.next_job += 1;
        let patches = Arc::new(self.patches.clone());
        for tx in &self.txs {
            tx.send(WorkerMsg::Exec {
                job,
                seed_job: seed_index,
                input: Arc::clone(&input),
                fault,
                breakpoint: None,
                patches: Arc::clone(&patches),
            })
            .expect("replica worker exited before shutdown");
        }
        self.inflight.push_back(JobState::new(
            job,
            seed_index,
            input,
            fault,
            patches,
            self.txs.len(),
        ));
        job
    }

    /// Non-blocking: the streaming verdict for an in-flight job, if its
    /// quorum has already formed from the events pumped so far. `None`
    /// means "no quorum yet (or no such job)" — use
    /// [`ReplicaPool::wait_verdict`] to distinguish by blocking.
    #[must_use]
    pub fn poll_verdict(&self, job: u64) -> Option<EarlyVerdict> {
        let state = self.inflight.iter().find(|s| s.job == job)?;
        let verdict = state.voter.verdict()?;
        let rep = verdict.agreeing[0];
        Some(EarlyVerdict {
            digest: verdict.digest,
            agreeing: verdict.agreeing.clone(),
            outstanding: verdict.outstanding,
            output: state.outputs[rep]
                .clone()
                .expect("agreeing replica published its output"),
        })
    }

    /// Blocks until the streaming voter reaches a quorum for `job` (or the
    /// job completes without one — all replicas mutually diverged). This
    /// is the paper's §3.1 moment: the voter releases the agreed output
    /// while stragglers are still executing.
    pub fn wait_verdict(&mut self, job: u64) -> Option<EarlyVerdict> {
        loop {
            let state = self.inflight.iter().find(|s| s.job == job)?;
            if state.voter.verdict().is_some() {
                return self.poll_verdict(job);
            }
            if state.complete() {
                return None;
            }
            self.pump_one();
        }
    }

    /// Blocks until the oldest in-flight job has fully completed on every
    /// replica, finalizes it (vote, isolation, patches), and returns it.
    /// `None` if nothing is in flight.
    pub fn next_outcome(&mut self) -> Option<PoolOutcome> {
        self.inflight.front()?;
        while !self.inflight.front().expect("checked above").complete() {
            self.pump_one();
        }
        let state = self.inflight.pop_front().expect("checked above");
        Some(self.finalize(state))
    }

    /// Submits one input and waits for its outcome — the pooled equivalent
    /// of one `run_replicated` call. Outcomes of earlier pipelined
    /// submissions are finalized along the way and dropped; use
    /// [`ReplicaPool::next_outcome`] when collecting a batch.
    pub fn run_one(&mut self, input: &WorkloadInput, fault: Option<FaultSpec>) -> PoolOutcome {
        let job = self.submit(input, fault);
        loop {
            let outcome = self.next_outcome().expect("the submitted job is in flight");
            if outcome.job == job {
                return outcome;
            }
        }
    }

    /// Broadcasts a whole batch pipelined, then collects all outcomes in
    /// submission order. This is the pool's throughput shape: K inputs
    /// cost K executions per worker, one pool setup total.
    pub fn run_batch(
        &mut self,
        inputs: &[WorkloadInput],
        fault: Option<FaultSpec>,
    ) -> Vec<PoolOutcome> {
        let jobs: Vec<u64> = inputs.iter().map(|i| self.submit(i, fault)).collect();
        jobs.iter()
            .map(|_| self.next_outcome().expect("batch job in flight"))
            .collect()
    }

    /// Stops the workers (after they drain any queued inputs) and joins
    /// them. Outcomes of jobs still in flight are discarded. Equivalent to
    /// dropping the pool; this form exists so callers can mark the
    /// teardown point explicitly.
    pub fn shutdown(mut self) {
        self.close();
    }

    /// Teardown shared by [`ReplicaPool::shutdown`] and `Drop`: closes the
    /// broadcast channels (workers drain whatever is queued, then exit)
    /// and joins every worker thread. A worker panic is re-raised — unless
    /// this thread is already unwinding, in which case raising again would
    /// abort the process, so the payload is dropped and the original
    /// panic keeps propagating.
    fn close(&mut self) {
        self.txs.clear();
        let mut worker_panic = None;
        for handle in self.handles.drain(..) {
            if let Err(payload) = handle.join() {
                worker_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = worker_panic {
            if !std::thread::panicking() {
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// Receives and applies one worker event. If a worker thread dies
    /// (panics) with jobs in flight, this panics promptly instead of
    /// blocking forever on an event that will never arrive — the pooled
    /// equivalent of the old per-call `join().expect(...)`.
    fn pump_one(&mut self) {
        let event = loop {
            match self.events.recv_timeout(Duration::from_millis(50)) {
                Ok(event) => break event,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // Workers only exit before shutdown by panicking.
                    assert!(
                        !self.handles.iter().any(ScopedJoinHandle::is_finished),
                        "replica worker panicked with jobs in flight"
                    );
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    panic!("all replica workers exited with jobs in flight")
                }
            }
        };
        match event {
            Event::Output {
                job,
                worker,
                output,
            } => {
                let state = self.state_mut(job);
                // The FNV digest is chunk-boundary-invariant, so the whole
                // output folds in one call; a producer that truly streamed
                // would call push_chunk per chunk with the same result.
                state.voter.push_chunk(worker, &output);
                let newly = state.verdict_at.is_none();
                if state.voter.finish_replica(worker).is_some() && newly {
                    let outstanding = state
                        .voter
                        .verdict()
                        .expect("verdict just formed")
                        .outstanding;
                    // xt-analyze: allow(time-source) -- verdict latency observation; feeds VoteTiming only, never an outcome byte
                    state.verdict_at = Some((Instant::now(), outstanding));
                }
                state.outputs[worker] = Some(output);
            }
            Event::Done {
                job,
                worker,
                record,
            } => {
                let state = self.state_mut(job);
                debug_assert!(state.records[worker].is_none(), "worker finished twice");
                state.records[worker] = Some(record);
                state.done += 1;
            }
        }
    }

    fn state_mut(&mut self, job: u64) -> &mut JobState {
        self.inflight
            .iter_mut()
            .find(|s| s.job == job)
            .expect("event for a job not in flight")
    }

    /// Turns a completed job into its outcome: full-set vote, per-replica
    /// summaries, isolation over the images on any failure or divergence,
    /// and (optionally) auto-reload of the newly isolated patches.
    fn finalize(&mut self, mut state: JobState) -> PoolOutcome {
        // xt-analyze: allow(time-source) -- full-completion latency observation; feeds VoteTiming only, never an outcome byte
        let full_at = Instant::now();
        let records: Vec<Box<RunRecord>> = state
            .records
            .drain(..)
            .map(|r| r.expect("job complete"))
            .collect();
        let digest_vote = state.voter.final_vote();
        let winner = state.outputs[digest_vote.agreeing[0]]
            .clone()
            .expect("winning replica published its output");
        let vote = VoteResult {
            winner,
            agreeing: digest_vote.agreeing,
            dissenting: digest_vote.dissenting,
        };

        let replicas: Vec<ReplicaSummary> = records
            .iter()
            .enumerate()
            .map(|(i, r)| ReplicaSummary {
                seed: replica_seed(self.config.base_seed, i, state.seed_job),
                completed: r.result.completed(),
                failed: r.failed(),
                signals: r.signals.len(),
                output_len: r.result.output.len(),
                output_digest: state.voter.digest_of(i).expect("job complete"),
            })
            .collect();

        let any_failure = !vote.unanimous() || replicas.iter().any(|r| r.failed);
        let mut merged = (*state.patches).clone();
        let report = if any_failure {
            // §3.4 alignment: isolation wants every replica's heap at one
            // logical time. Re-execute this job on every worker with its
            // *original* seed, halted at the earliest detection clock —
            // Fig. 5's "dump all replicas at the failure point". End-of-run
            // images would let replicas that kept running recycle the
            // corrupted slots (canary refill on free), erasing — and then
            // actively refuting — the evidence.
            let images = self.aligned_images(&state, &records, &vote);
            let report = isolate_with(&images, self.config.options).unwrap_or_default();
            let new_patches = report.to_patches();
            // Escalate rather than max: deferrals isolated while patches
            // were loaded are measured from the already-deferred free time
            // (§6.2).
            merged.escalate(&new_patches);
            if self.config.auto_patch {
                self.patches.escalate(&new_patches);
            }
            Some(report)
        } else {
            None
        };

        let (verdict_at, outstanding) = state.verdict_at.unwrap_or((full_at, 0));
        PoolOutcome {
            job: state.job,
            outcome: ReplicatedOutcome {
                vote,
                patches: merged,
                report,
                replicas,
            },
            timing: VoteTiming {
                outstanding_at_verdict: outstanding,
                verdict_latency: verdict_at - state.submitted_at,
                full_latency: full_at - state.submitted_at,
            },
        }
    }

    /// The detection-aligned heap images for a failed job: every worker
    /// replays the job with the same heap seed, stopped at the malloc
    /// breakpoint of the earliest failure (or the earliest dissenting
    /// replica's clock when corruption produced divergence without a
    /// crash). Deterministic: the breakpoint derives from the records and
    /// replays reuse the job's seeds, so the images are a pure function of
    /// the job.
    fn aligned_images(
        &mut self,
        state: &JobState,
        records: &[Box<RunRecord>],
        vote: &VoteResult,
    ) -> Vec<HeapImage> {
        let breakpoint = records
            .iter()
            .filter(|r| r.failed())
            .map(|r| r.clock)
            .min()
            .or_else(|| vote.dissenting.iter().map(|&i| records[i].clock).min())
            .or_else(|| records.iter().map(|r| r.clock).min())
            .expect("a failed job has at least one replica");
        let replay = self.next_job;
        self.next_job += 1;
        for tx in &self.txs {
            tx.send(WorkerMsg::Exec {
                job: replay,
                seed_job: state.seed_job,
                input: Arc::clone(&state.input),
                fault: state.fault,
                breakpoint: Some(breakpoint),
                patches: Arc::clone(&state.patches),
            })
            .expect("replica worker exited before shutdown");
        }
        self.inflight.push_back(JobState::new(
            replay,
            state.seed_job,
            Arc::clone(&state.input),
            state.fault,
            Arc::clone(&state.patches),
            self.txs.len(),
        ));
        while !self
            .inflight
            .iter()
            .find(|s| s.job == replay)
            .expect("replay job in flight")
            .complete()
        {
            self.pump_one();
        }
        let pos = self
            .inflight
            .iter()
            .position(|s| s.job == replay)
            .expect("replay job in flight");
        let replay_state = self.inflight.remove(pos).expect("position just found");
        replay_state
            .records
            .into_iter()
            .map(|r| r.expect("replay complete").image)
            .collect()
    }
}

/// Dropping a pool without [`ReplicaPool::shutdown`] must not detach its
/// workers: before this impl existed, the senders died silently, the
/// workers kept executing whatever was queued with nobody joining them
/// until the enclosing scope's implicit join, and a worker panic surfaced
/// (if ever) far from the pool that owned it. Drop now performs the same
/// teardown as `shutdown`: drain the channels, join every worker, and
/// propagate a worker panic — unless this drop is itself part of an
/// unwind, where propagating would abort.
impl Drop for ReplicaPool<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

/// The worker body: a persistent replica executing broadcast inputs over
/// one reusable allocator stack.
#[allow(clippy::too_many_arguments)]
fn worker_loop<W: Workload + Sync + ?Sized>(
    workload: &W,
    worker: usize,
    base_seed: u64,
    diefast: &DieFastConfig,
    halt_on_signal: bool,
    straggle: Option<Duration>,
    rx: &Receiver<WorkerMsg>,
    events: &Sender<Event>,
    capture_hist: &Histogram,
) {
    let mut stack = ReusableStack::new();
    while let Ok(WorkerMsg::Exec {
        job,
        seed_job,
        input,
        fault,
        breakpoint,
        patches,
    }) = rx.recv()
    {
        if let Some(delay) = straggle {
            std::thread::sleep(delay);
        }
        let config = RunConfig {
            heap_seed: replica_seed(base_seed, worker, seed_job),
            diefast: diefast.clone(),
            // The correcting allocator owns its table, so each execution
            // clones from the shared snapshot — in the worker, off the
            // submitter's critical path.
            patches: (*patches).clone(),
            fault,
            breakpoint,
            // Replays stop at the malloc breakpoint instead (§3.4).
            halt_on_signal: halt_on_signal && breakpoint.is_none(),
        };
        let mut active = stack.start(config);
        // `&W` may be unsized; `&&W` is a Sized `Workload` via the blanket
        // reference impl, so it coerces to `&dyn Workload`.
        let output = active.run(&workload, input.as_ref()).output.clone();
        // Publish the output before paying for image capture: the voter
        // can reach quorum while this worker (and stragglers) finish.
        if events
            .send(Event::Output {
                job,
                worker,
                output,
            })
            .is_err()
        {
            return;
        }
        let capture_start = Instant::now();
        let record = active.finish();
        capture_hist.record_duration(capture_start.elapsed());
        if events
            .send(Event::Done {
                job,
                worker,
                record: Box::new(record),
            })
            .is_err()
        {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_alloc::AllocTime;
    use xt_faults::{FaultKind, FaultSpec};
    use xt_workloads::EspressoLike;

    #[test]
    fn pool_serves_many_inputs_without_respawning() {
        let workload = EspressoLike::new();
        std::thread::scope(|scope| {
            let mut pool =
                ReplicaPool::scoped(scope, &workload, PoolConfig::default(), PatchTable::new());
            for seed in 0..4 {
                let out = pool.run_one(&WorkloadInput::with_seed(seed), None);
                assert!(out.outcome.vote.unanimous(), "clean replicas diverged");
                assert!(!out.outcome.error_observed());
                assert_eq!(out.outcome.replicas.len(), 3);
                assert!(out.outcome.replicas.iter().all(|r| r.completed));
            }
            // Every replica's finish() landed one capture-stage sample.
            let snap = pool.observability().snapshot();
            assert_eq!(snap.histogram("pool/capture").unwrap().count(), 4 * 3);
            pool.shutdown();
        });
    }

    /// A worker that dies must surface as a prompt panic in the caller,
    /// never as an infinite `next_outcome` hang (the pooled equivalent of
    /// the old per-call `join().expect(...)`).
    #[test]
    fn worker_panic_propagates_instead_of_hanging() {
        struct Panicker;
        impl xt_workloads::Workload for Panicker {
            fn name(&self) -> &'static str {
                "panicker"
            }
            fn run(
                &self,
                _heap: &mut dyn xt_alloc::Heap,
                _input: &WorkloadInput,
            ) -> xt_workloads::RunResult {
                panic!("simulated replica crash outside the heap sandbox")
            }
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|scope| {
                let mut pool =
                    ReplicaPool::scoped(scope, &Panicker, PoolConfig::default(), PatchTable::new());
                let _ = pool.run_one(&WorkloadInput::with_seed(1), None);
                pool.shutdown();
            });
        }));
        assert!(result.is_err(), "dead workers must panic the pool");
    }

    #[test]
    fn pipelined_batch_completes_in_submission_order() {
        let workload = EspressoLike::new();
        let inputs: Vec<WorkloadInput> = (0..6).map(WorkloadInput::with_seed).collect();
        std::thread::scope(|scope| {
            let mut pool =
                ReplicaPool::scoped(scope, &workload, PoolConfig::default(), PatchTable::new());
            let outcomes = pool.run_batch(&inputs, None);
            assert_eq!(outcomes.len(), 6);
            for (i, out) in outcomes.iter().enumerate() {
                assert_eq!(out.job, i as u64, "outcomes out of submission order");
                assert!(out.outcome.vote.unanimous());
            }
            pool.shutdown();
        });
    }

    #[test]
    fn straggler_does_not_block_the_verdict() {
        let workload = EspressoLike::new();
        std::thread::scope(|scope| {
            let mut pool = ReplicaPool::scoped(
                scope,
                &workload,
                PoolConfig {
                    replicas: 3,
                    straggler: Some(Straggler {
                        replica: 2,
                        delay: Duration::from_millis(150),
                    }),
                    ..PoolConfig::default()
                },
                PatchTable::new(),
            );
            let job = pool.submit(&WorkloadInput::with_seed(3), None);
            let verdict = pool.wait_verdict(job).expect("quorum must form");
            assert_eq!(
                verdict.outstanding, 1,
                "verdict should land while the straggler still runs"
            );
            assert_eq!(verdict.agreeing, vec![0, 1]);
            assert!(!verdict.output.is_empty());
            let out = pool.next_outcome().expect("job completes");
            assert!(out.outcome.vote.unanimous(), "straggler agreed in the end");
            assert_eq!(out.timing.outstanding_at_verdict, 1);
            assert!(out.timing.verdict_latency <= out.timing.full_latency);
            pool.shutdown();
        });
    }

    #[test]
    fn pool_isolates_and_self_patches_a_manifesting_fault() {
        // Same §7.2 methodology as the one-shot test: search injector
        // candidates until one both manifests and isolates, then watch the
        // *pool* converge on it via auto-reloaded patches.
        let workload = EspressoLike::new();
        let input = WorkloadInput::with_seed(8).intensity(3);
        let mut corrected = false;
        'candidates: for sel in 0..8u64 {
            let Some(fault) = crate::runner::find_manifesting_fault(
                &workload,
                &input,
                FaultKind::BufferOverflow {
                    delta: 20,
                    fill: 0xEE,
                },
                100,
                300,
                20,
                4,
                5 + sel,
            ) else {
                continue;
            };
            std::thread::scope(|scope| {
                let mut pool = ReplicaPool::scoped(
                    scope,
                    &workload,
                    PoolConfig {
                        replicas: 6,
                        ..PoolConfig::default()
                    },
                    PatchTable::new(),
                );
                // The same input keeps arriving; patches isolated from one
                // failure apply to the next submission without restarting
                // the pool.
                for _ in 0..6 {
                    let out = pool.run_one(&input, Some(fault));
                    if !out.outcome.error_observed() && !pool.patches().is_empty() {
                        corrected = true;
                        break;
                    }
                }
                pool.shutdown();
            });
            if corrected {
                break 'candidates;
            }
        }
        assert!(corrected, "no candidate fault was isolated and repaired");
    }

    /// Dropping a pool without `shutdown` must behave like `shutdown`:
    /// block until every worker has drained its queue and exited. A
    /// deliberately slow workload pins the ordering — if Drop detached the
    /// workers, it would return while executions were still running.
    #[test]
    fn drop_joins_workers_and_leaves_no_live_threads() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        struct Slow {
            in_flight: AtomicUsize,
            started: AtomicUsize,
        }
        impl xt_workloads::Workload for Slow {
            fn name(&self) -> &'static str {
                "slow"
            }
            fn run(
                &self,
                heap: &mut dyn xt_alloc::Heap,
                input: &WorkloadInput,
            ) -> xt_workloads::RunResult {
                self.in_flight.fetch_add(1, Ordering::SeqCst);
                self.started.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(20));
                let result = EspressoLike::new().run(heap, input);
                self.in_flight.fetch_sub(1, Ordering::SeqCst);
                result
            }
        }

        let workload = Slow {
            in_flight: AtomicUsize::new(0),
            started: AtomicUsize::new(0),
        };
        std::thread::scope(|scope| {
            let mut pool =
                ReplicaPool::scoped(scope, &workload, PoolConfig::default(), PatchTable::new());
            pool.submit(&WorkloadInput::with_seed(1), None);
            pool.submit(&WorkloadInput::with_seed(2), None);
            let started = Instant::now();
            drop(pool);
            // Drop returned only after the workers drained both queued
            // jobs (2 jobs x 20 ms per worker; the first may have started
            // before the clock) and exited.
            assert!(
                started.elapsed() >= Duration::from_millis(30),
                "drop returned before the queued work drained"
            );
        });
        assert_eq!(
            workload.in_flight.load(Ordering::SeqCst),
            0,
            "a replica execution outlived the pool"
        );
        assert_eq!(
            workload.started.load(Ordering::SeqCst),
            2 * 3,
            "queued jobs were discarded instead of drained"
        );
    }

    /// A worker that panicked must not die silently when the pool is
    /// dropped without ever collecting an outcome: Drop joins the worker
    /// and re-raises its panic (when not already unwinding).
    #[test]
    fn drop_propagates_a_worker_panic() {
        struct Panicker;
        impl xt_workloads::Workload for Panicker {
            fn name(&self) -> &'static str {
                "panicker"
            }
            fn run(
                &self,
                _heap: &mut dyn xt_alloc::Heap,
                _input: &WorkloadInput,
            ) -> xt_workloads::RunResult {
                panic!("simulated replica crash outside the heap sandbox")
            }
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|scope| {
                let mut pool =
                    ReplicaPool::scoped(scope, &Panicker, PoolConfig::default(), PatchTable::new());
                pool.submit(&WorkloadInput::with_seed(1), None);
                // Dropped with the job still in flight — never pumped.
            });
        }));
        assert!(result.is_err(), "dropping a crashed pool hid the panic");
    }

    #[test]
    fn epoch_reload_applies_between_inputs() {
        let workload = EspressoLike::new();
        // A deterministic data-corrupting fault (same as the divergence
        // test in `replicated`).
        let fault = FaultSpec {
            kind: FaultKind::BufferOverflow {
                delta: 8,
                fill: 0x44,
            },
            trigger: AllocTime::from_raw(90),
        };
        std::thread::scope(|scope| {
            let mut pool = ReplicaPool::scoped(
                scope,
                &workload,
                PoolConfig {
                    replicas: 5,
                    auto_patch: false,
                    ..PoolConfig::default()
                },
                PatchTable::new(),
            );
            let genesis = PatchEpoch::genesis();
            assert!(!pool.load_epoch(&genesis), "genesis is never an advance");
            // A fleet-published epoch carrying a pad for some site.
            let mut table = PatchTable::new();
            table.add_pad(xt_alloc::SiteHash::from_raw(0xFEED), 32);
            let epoch = genesis.succeed(&table);
            assert!(pool.load_epoch(&epoch), "newer epoch must load");
            assert!(!pool.load_epoch(&epoch), "same epoch must not reload");
            assert_eq!(pool.epoch(), 1);
            let out = pool.run_one(&WorkloadInput::with_seed(14), Some(fault));
            // The job ran under the epoch's table: it is the floor of the
            // outcome's merged patches.
            assert!(
                out.outcome
                    .patches
                    .pad_for(xt_alloc::SiteHash::from_raw(0xFEED))
                    >= 32,
                "epoch patches missing from the job's table"
            );
            pool.shutdown();
        });
    }
}
