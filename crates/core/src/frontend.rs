//! The concurrent pool front-end: replicated execution as a *server*.
//!
//! A [`ReplicaPool`](crate::pool::ReplicaPool) is a single-caller object —
//! every submission is broadcast synchronously from the owning thread, and
//! outcomes are collected by the same thread in submission order. That is
//! the right shape for one driver loop, but the paper deploys Exterminator
//! as an always-on service (§6.4's collaborative loop, Fig. 5's replicated
//! runtime): many clients submit concurrently, and the runtime is expected
//! to stay up for the life of the process. [`PoolFrontend`] is that layer:
//!
//! * **K pools, one front door.** The front-end owns `pools` independent
//!   [`ReplicaPool`]s, each driven by its own thread inside its own worker
//!   scope. Submissions are routed pool-per-shard by input hash
//!   ([`RouteBy::InputHash`] — affinity for repeated inputs) or spread
//!   round-robin ([`RouteBy::RoundRobin`], the default).
//! * **Bounded queues, real backpressure.** Each pool sits behind a
//!   bounded MPMC job queue. [`PoolFrontend::submit`] blocks while the
//!   target queue is full, so a burst of clients cannot grow the in-flight
//!   set without bound — the service degrades to waiting, never to OOM.
//! * **Tickets instead of a caller loop.** `submit` returns a
//!   [`JobTicket`]; the submitting thread overlaps its own work with the
//!   replicas' and picks the outcome up via [`JobTicket::try_poll`] /
//!   [`JobTicket::wait`], or grabs the streaming quorum verdict early via
//!   [`JobTicket::wait_verdict`] — the §3.1 moment, surfaced per job to
//!   whichever thread submitted it.
//! * **One epoch, K pools.** [`PoolFrontend::load_epoch`] advances a
//!   single front-end-wide epoch version; every pool picks the table up
//!   before its next submission, so no job dispatched after `load_epoch`
//!   returns can run under the older table on *any* pool. Patches a pool
//!   isolates from its own failures fan out to the sibling pools the same
//!   way (see [`FrontendConfig::share_isolated`]).
//!
//! Determinism: a job's outcome is a pure function of `(pool config,
//! global sequence number, input, fault, patch table at dispatch)` — the
//! global sequence rides into the pool via
//! [`ReplicaPool::submit_seeded`](crate::pool::ReplicaPool::submit_seeded),
//! so *which* pool executed a job and how submissions interleaved with
//! stragglers cannot change a single outcome byte. Running the same inputs
//! serially through one `ReplicaPool` reproduces a front-end's outcomes
//! exactly (pinned by `tests/frontend.rs`). Only wall-clock
//! [`VoteTiming`](crate::pool::VoteTiming) observations vary — and, when
//! `share_isolated`/`auto_patch` are left on, the moment at which isolated
//! patches become visible to later jobs, exactly as for a single pool.
//!
//! The same pin extends across the wire: `xt-net`'s `NetFrontend` wraps a
//! `PoolFrontend` and hands each remote submission to [`PoolFrontend::
//! submit`], so the global sequence number — not the connection, not the
//! read interleaving — decides every outcome byte, and remote results are
//! compared by [`PoolOutcome::deterministic_digest`](crate::pool::
//! PoolOutcome::deterministic_digest) instead of shipping whole outcomes.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::{Scope, ScopedJoinHandle};
use std::time::Instant;

use xt_faults::FaultSpec;
use xt_obs::{Histogram, Registry};
use xt_patch::{PatchEpoch, PatchTable};
use xt_workloads::{fnv1a, Workload, WorkloadInput};

use crate::pool::{EarlyVerdict, PoolConfig, PoolOutcome, ReplicaPool};

/// Configuration for a [`PoolFrontend`].
#[derive(Clone, Debug)]
pub struct FrontendConfig {
    /// Number of independent replica pools (shards) behind the front door.
    pub pools: usize,
    /// Configuration every pool is built with (replica count, seeds,
    /// isolation tuning — see [`PoolConfig`]).
    pub pool: PoolConfig,
    /// Capacity of each pool's job queue. A full queue blocks submitters
    /// (backpressure) instead of growing without bound.
    pub queue_capacity: usize,
    /// How many jobs a driver keeps in flight inside its pool at once —
    /// the pipelining depth downstream of the queue. Deep enough that the
    /// replica workers never starve while the driver finalizes the front
    /// job (a shallow pipeline measurably costs throughput: finalization
    /// includes image capture, and workers idle once they drain what was
    /// broadcast); shallow enough to bound the work lost on shutdown.
    pub max_inflight: usize,
    /// How submissions pick a pool.
    pub route: RouteBy,
    /// Fan patches isolated by one pool's failures out to the sibling
    /// pools (via the shared table every driver syncs before submitting).
    /// Requires `pool.auto_patch`; disable for measurement runs that must
    /// keep pools independent.
    pub share_isolated: bool,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        FrontendConfig {
            pools: 2,
            pool: PoolConfig::default(),
            queue_capacity: 64,
            max_inflight: 32,
            route: RouteBy::RoundRobin,
            share_isolated: true,
        }
    }
}

/// Submission routing policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteBy {
    /// Spread submissions over pools in global submission order.
    RoundRobin,
    /// Shard by a hash of the input (seed, intensity, payload): repeated
    /// inputs land on the same pool, like connection affinity in a
    /// sharded server.
    InputHash,
}

/// Aggregate front-end counters (all monotone; read via
/// [`PoolFrontend::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrontendStats {
    /// Jobs accepted by `submit`.
    pub submitted: u64,
    /// Jobs fully finalized (outcome posted to its ticket).
    pub completed: u64,
    /// Finalized jobs whose outcome observed an error (failure or
    /// divergence).
    pub failures: u64,
    /// Times a submitter blocked on a full queue.
    pub backpressure_waits: u64,
}

/// One queued submission. The input is shared, not copied: the only real
/// copy is made once at [`PoolFrontend::submit`], and the pool broadcast
/// downstream is reference bumps all the way.
struct Job {
    seq: u64,
    input: Arc<WorkloadInput>,
    fault: Option<FaultSpec>,
    slot: Arc<TicketSlot>,
    /// When `submit` enqueued the job — start of the queue-wait stage
    /// (observability only; timing never reaches any outcome byte).
    enqueued: Instant,
}

/// What the ticket holder eventually receives.
#[derive(Default)]
struct TicketCell {
    /// `Some(verdict)` once the streaming vote resolved: `Some(Some(_))`
    /// for a quorum, `Some(None)` when the job completed with all replicas
    /// mutually diverged.
    verdict: Option<Option<EarlyVerdict>>,
    outcome: Option<PoolOutcome>,
    /// The driver serving this job died; waiting any longer is hopeless.
    dead: bool,
    /// A thread is blocked on `ready` (set under the lock before every
    /// wait, so posts skip the futex wake when nobody listens — most
    /// tickets are collected after completion, where every wake is pure
    /// syscall overhead on the driver's critical path).
    waiting: bool,
}

struct TicketSlot {
    cell: Mutex<TicketCell>,
    ready: Condvar,
}

impl TicketSlot {
    fn new() -> Self {
        TicketSlot {
            cell: Mutex::new(TicketCell::default()),
            ready: Condvar::new(),
        }
    }

    fn post_verdict(&self, verdict: Option<EarlyVerdict>) {
        let mut cell = self.cell.lock().unwrap_or_else(PoisonError::into_inner);
        cell.verdict = Some(verdict);
        if cell.waiting {
            self.ready.notify_all();
        }
    }

    fn post_outcome(&self, outcome: PoolOutcome) {
        let mut cell = self.cell.lock().unwrap_or_else(PoisonError::into_inner);
        cell.outcome = Some(outcome);
        if cell.waiting {
            self.ready.notify_all();
        }
    }

    fn kill(&self) {
        let mut cell = self.cell.lock().unwrap_or_else(PoisonError::into_inner);
        cell.dead = true;
        self.ready.notify_all();
    }
}

/// A per-job completion handle returned by [`PoolFrontend::submit`]. The
/// submitting thread keeps working while the replicas execute, then polls
/// or blocks at its convenience. Dropping a ticket abandons the outcome
/// (the job still runs to completion — its evidence and patches are not
/// lost, only the caller's copy of the outcome).
///
/// # Panics
///
/// All waiting methods panic if the driver thread serving this job died;
/// the underlying worker panic propagates from
/// [`PoolFrontend::shutdown`] (or the front-end's drop).
pub struct JobTicket {
    job: u64,
    slot: Arc<TicketSlot>,
}

impl JobTicket {
    /// The front-end-wide sequence number assigned to this submission
    /// (also the seed index its replicas derive heap seeds from).
    #[must_use]
    pub fn job(&self) -> u64 {
        self.job
    }

    /// The finalized outcome, if it is already available.
    #[must_use]
    pub fn try_poll(&self) -> Option<PoolOutcome> {
        let cell = self
            .slot
            .cell
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        assert!(!cell.dead, "pool front-end driver died serving this job");
        cell.outcome.clone()
    }

    /// Blocks until the job has fully completed on every replica and
    /// returns the finalized outcome.
    #[must_use]
    pub fn wait(self) -> PoolOutcome {
        let mut cell = self
            .slot
            .cell
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            assert!(!cell.dead, "pool front-end driver died serving this job");
            if let Some(outcome) = cell.outcome.take() {
                cell.waiting = false;
                return outcome;
            }
            cell.waiting = true;
            cell = self
                .slot
                .ready
                .wait(cell)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks until the streaming voter resolved for this job: the quorum
    /// verdict the paper's voter would release to the user while
    /// stragglers are still executing, or `None` if the job completed with
    /// every replica disagreeing.
    #[must_use]
    pub fn wait_verdict(&self) -> Option<EarlyVerdict> {
        let mut cell = self
            .slot
            .cell
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            assert!(!cell.dead, "pool front-end driver died serving this job");
            if let Some(verdict) = &cell.verdict {
                let verdict = verdict.clone();
                cell.waiting = false;
                return verdict;
            }
            cell.waiting = true;
            cell = self
                .slot
                .ready
                .wait(cell)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// One pool's bounded job queue.
struct PoolQueue {
    state: Mutex<QueueState>,
    not_full: Condvar,
    not_empty: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    /// Shutdown requested: no further submissions, drivers drain and exit.
    closed: bool,
    /// The serving driver died; submissions and queued jobs must fail
    /// fast instead of waiting forever.
    dead: bool,
    /// The driver is blocked on `not_empty` (maintained under the lock so
    /// pushes skip the futex wake while the driver is busy executing).
    consumer_waiting: bool,
    /// Submitters blocked on `not_full` (backpressure).
    producers_waiting: usize,
}

impl PoolQueue {
    fn new() -> Self {
        PoolQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
                dead: false,
                consumer_waiting: false,
                producers_waiting: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }
}

/// The live patch state shared by every pool.
struct PatchState {
    table: PatchTable,
    /// Highest fleet epoch loaded (the single epoch version of the whole
    /// front-end).
    epoch: u64,
    /// Bumped on every table change; drivers compare against their local
    /// copy before each dispatch.
    version: u64,
}

/// State shared between submitters and drivers.
struct Shared {
    queues: Vec<PoolQueue>,
    capacity: usize,
    patches: Mutex<PatchState>,
    /// Mirror of `patches.version` readable without the lock: drivers
    /// check it per dispatch and only take the lock on a change.
    patch_version: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    failures: AtomicU64,
    backpressure_waits: AtomicU64,
    /// Per-stage latency instruments shared by every driver:
    /// `frontend/queue_wait` (submit → driver dequeue),
    /// `frontend/verdict` (dispatch → streaming quorum posted),
    /// `frontend/exec` (dispatch → outcome finalized on all replicas).
    /// Each driver's [`ReplicaPool`] also records into this registry
    /// (`pool/capture`, the heap-image capture stage), so one snapshot
    /// carries the whole service's stage latencies.
    obs: Arc<Registry>,
    queue_wait_hist: Arc<Histogram>,
    verdict_hist: Arc<Histogram>,
    exec_hist: Arc<Histogram>,
}

impl Shared {
    /// Blocking bounded push (the backpressure point).
    fn push(&self, target: usize, job: Job) {
        let q = &self.queues[target];
        let mut st = q.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.jobs.len() >= self.capacity && !st.dead && !st.closed {
            // Counted once per blocked push, not once per wakeup — a
            // notify_all that races eight producers for one slot is still
            // one backpressure episode each.
            self.backpressure_waits.fetch_add(1, Ordering::Relaxed);
        }
        while st.jobs.len() >= self.capacity && !st.dead && !st.closed {
            st.producers_waiting += 1;
            st = q.not_full.wait(st).unwrap_or_else(PoisonError::into_inner);
            st.producers_waiting -= 1;
        }
        assert!(!st.dead, "pool front-end driver died; submission rejected");
        assert!(!st.closed, "submit on a front-end that is shutting down");
        st.jobs.push_back(job);
        if st.consumer_waiting {
            q.not_empty.notify_one();
        }
    }

    /// Driver-side refill: takes up to `max` queued jobs in one lock
    /// acquisition. When `block` is set and the queue is open but empty,
    /// waits until a job arrives; an empty result from a blocking refill
    /// therefore means the queue is closed and fully drained.
    fn refill(&self, index: usize, max: usize, block: bool) -> Vec<Job> {
        let q = &self.queues[index];
        let mut st = q.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if !st.jobs.is_empty() {
                let take = st.jobs.len().min(max);
                let jobs: Vec<Job> = st.jobs.drain(..take).collect();
                if st.producers_waiting > 0 {
                    q.not_full.notify_all();
                }
                return jobs;
            }
            if st.closed || !block {
                return Vec::new();
            }
            st.consumer_waiting = true;
            st = q.not_empty.wait(st).unwrap_or_else(PoisonError::into_inner);
            st.consumer_waiting = false;
        }
    }

    /// Marks queue `index` dead after its driver died: pending jobs'
    /// tickets are killed and future submitters routed here fail fast.
    fn kill_queue(&self, index: usize) {
        let q = &self.queues[index];
        let mut st = q.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.dead = true;
        for job in st.jobs.drain(..) {
            job.slot.kill();
        }
        q.not_empty.notify_all();
        q.not_full.notify_all();
    }

    /// Merges `table` into the shared live table, bumping the version only
    /// if anything actually changed (the patch lattice makes re-merges
    /// no-ops, and `merge` reports change for free — no clone-and-compare
    /// under this contended lock).
    fn fold_patches(&self, table: &PatchTable) {
        let mut st = self.patches.lock().unwrap_or_else(PoisonError::into_inner);
        if st.table.merge(table) {
            st.version += 1;
            self.patch_version.store(st.version, Ordering::Release);
        }
    }
}

/// The concurrent multi-pool executor. Like the pool it wraps, it is
/// created inside a [`std::thread::scope`] so replica workers may borrow
/// the workload; unlike the pool, every method takes `&self` — share one
/// front-end across all submitter threads.
///
/// ```
/// use exterminator::frontend::{FrontendConfig, PoolFrontend};
/// use xt_patch::PatchTable;
/// use xt_workloads::{EspressoLike, WorkloadInput};
///
/// let workload = EspressoLike::new();
/// std::thread::scope(|scope| {
///     let frontend = PoolFrontend::scoped(
///         scope,
///         &workload,
///         FrontendConfig::default(),
///         PatchTable::new(),
///     );
///     // Submit without blocking on the replicas...
///     let tickets: Vec<_> = (0..4)
///         .map(|seed| frontend.submit(&WorkloadInput::with_seed(seed), None))
///         .collect();
///     // ...then collect at leisure.
///     for ticket in tickets {
///         assert!(ticket.wait().outcome.vote.unanimous());
///     }
///     frontend.shutdown();
/// });
/// ```
pub struct PoolFrontend<'scope> {
    shared: Arc<Shared>,
    drivers: Vec<ScopedJoinHandle<'scope, ()>>,
    route: RouteBy,
    next_seq: AtomicU64,
}

impl<'scope> PoolFrontend<'scope> {
    /// Spawns `config.pools` driver threads, each owning one
    /// [`ReplicaPool`] built from `config.pool`, with `patches` as the
    /// initially shared table.
    pub fn scoped<'env, W>(
        scope: &'scope Scope<'scope, 'env>,
        workload: &'env W,
        config: FrontendConfig,
        patches: PatchTable,
    ) -> PoolFrontend<'scope>
    where
        W: Workload + Sync + ?Sized,
    {
        let pools = config.pools.max(1);
        let obs = Registry::new();
        let (queue_wait_hist, verdict_hist, exec_hist) = (
            obs.histogram("frontend/queue_wait"),
            obs.histogram("frontend/verdict"),
            obs.histogram("frontend/exec"),
        );
        let shared = Arc::new(Shared {
            queues: (0..pools).map(|_| PoolQueue::new()).collect(),
            capacity: config.queue_capacity.max(1),
            patches: Mutex::new(PatchState {
                table: patches,
                epoch: 0,
                version: 0,
            }),
            patch_version: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            backpressure_waits: AtomicU64::new(0),
            obs,
            queue_wait_hist,
            verdict_hist,
            exec_hist,
        });
        let share_isolated = config.share_isolated && config.pool.auto_patch;
        let max_inflight = config.max_inflight.max(1);
        let mut drivers = Vec::with_capacity(pools);
        for index in 0..pools {
            let shared = Arc::clone(&shared);
            let pool_config = config.pool.clone();
            drivers.push(scope.spawn(move || {
                drive(
                    workload,
                    pool_config,
                    &shared,
                    index,
                    max_inflight,
                    share_isolated,
                );
            }));
        }
        PoolFrontend {
            shared,
            drivers,
            route: config.route,
            next_seq: AtomicU64::new(0),
        }
    }

    /// Number of pools behind the front door.
    #[must_use]
    pub fn pools(&self) -> usize {
        self.shared.queues.len()
    }

    /// The front-end's latency instruments (`frontend/queue_wait`,
    /// `frontend/verdict`, `frontend/exec`) plus the pools' capture-stage
    /// histogram (`pool/capture`). Observability only: none of it feeds
    /// outcome bytes or deterministic digests.
    #[must_use]
    pub fn observability(&self) -> &Arc<Registry> {
        &self.shared.obs
    }

    /// Front-end counters.
    #[must_use]
    pub fn stats(&self) -> FrontendStats {
        FrontendStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            failures: self.shared.failures.load(Ordering::Relaxed),
            backpressure_waits: self.shared.backpressure_waits.load(Ordering::Relaxed),
        }
    }

    /// The highest fleet epoch loaded so far (one version for all pools).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.shared
            .patches
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .epoch
    }

    /// A snapshot of the shared live patch table (epoch patches plus
    /// whatever the pools isolated and shared).
    #[must_use]
    pub fn patches(&self) -> PatchTable {
        self.shared
            .patches
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .table
            .clone()
    }

    /// Joins `table` into the shared live table. Every pool picks it up
    /// before its next dispatch; jobs submitted after this returns run
    /// under it on whichever pool they land.
    pub fn load_patches(&self, table: &PatchTable) {
        self.shared.fold_patches(table);
    }

    /// Loads a fleet [`PatchEpoch`] if it is newer than the last one
    /// loaded — atomically for the whole front-end: one epoch version
    /// guards all K pools, so no torn state where some pools run epoch
    /// `n + 1` while the front-end still reports `n`. Returns `true` if
    /// the live table advanced.
    pub fn load_epoch(&self, epoch: &PatchEpoch) -> bool {
        let mut st = self
            .shared
            .patches
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if epoch.number <= st.epoch {
            return false;
        }
        st.epoch = epoch.number;
        st.table.merge(&epoch.patches);
        st.version += 1;
        self.shared
            .patch_version
            .store(st.version, Ordering::Release);
        true
    }

    /// Routes one input to its pool and enqueues it, blocking while that
    /// pool's queue is full (backpressure). Returns the job's ticket;
    /// callers overlap their own work with the replicas and collect via
    /// the ticket.
    pub fn submit(&self, input: &WorkloadInput, fault: Option<FaultSpec>) -> JobTicket {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let target = match self.route {
            RouteBy::RoundRobin => (seq % self.shared.queues.len() as u64) as usize,
            RouteBy::InputHash => input_shard(input, self.shared.queues.len()),
        };
        let slot = Arc::new(TicketSlot::new());
        // Counted before the job becomes visible to a driver, so readers
        // of the aggregate stats never observe completed > submitted.
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        self.shared.push(
            target,
            Job {
                seq,
                input: Arc::new(input.clone()),
                fault,
                slot: Arc::clone(&slot),
                enqueued: Instant::now(),
            },
        );
        JobTicket { job: seq, slot }
    }

    /// Submits a whole batch and blocks for all outcomes, returned in
    /// submission order — the front-end equivalent of
    /// [`ReplicaPool::run_batch`](crate::pool::ReplicaPool::run_batch).
    ///
    /// Collection runs newest-ticket-first: each pool finalizes its jobs
    /// in FIFO order, so once a pool's newest job has completed, the
    /// waits for its older tickets return without ever blocking — the
    /// whole batch costs at most one sleep/wake round trip per pool
    /// instead of one per job.
    pub fn run_all(&self, inputs: &[WorkloadInput], fault: Option<FaultSpec>) -> Vec<PoolOutcome> {
        let tickets: Vec<JobTicket> = inputs.iter().map(|i| self.submit(i, fault)).collect();
        let mut outcomes: Vec<PoolOutcome> =
            tickets.into_iter().rev().map(JobTicket::wait).collect();
        outcomes.reverse();
        outcomes
    }

    /// Closes the queues, lets every driver drain its backlog, shuts the
    /// pools down, and joins the drivers. Equivalent to dropping the
    /// front-end; this form marks the teardown point explicitly.
    pub fn shutdown(mut self) {
        self.close();
    }

    fn close(&mut self) {
        for q in &self.shared.queues {
            let mut st = q.state.lock().unwrap_or_else(PoisonError::into_inner);
            st.closed = true;
            q.not_empty.notify_all();
            q.not_full.notify_all();
        }
        let mut driver_panic = None;
        for handle in self.drivers.drain(..) {
            if let Err(payload) = handle.join() {
                driver_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = driver_panic {
            if !std::thread::panicking() {
                resume_unwind(payload);
            }
        }
    }
}

/// Dropping the front-end performs the same teardown as
/// [`PoolFrontend::shutdown`]: queued jobs drain, pools join their
/// workers, and a driver panic propagates (unless already unwinding).
impl Drop for PoolFrontend<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

/// Shard selection for [`RouteBy::InputHash`]: FNV-1a over the input's
/// identity, spread by multiply-shift.
fn input_shard(input: &WorkloadInput, pools: usize) -> usize {
    let mut h = fnv1a(0, &input.seed.to_le_bytes());
    h = fnv1a(h, &input.intensity.to_le_bytes());
    h = fnv1a(h, &input.payload);
    (((h ^ (h >> 32)).wrapping_mul(0x9E37_79B9) >> 32) as usize) % pools
}

/// One driver thread: owns one [`ReplicaPool`] and marshals between the
/// front-end's queue/tickets and the pool's synchronous caller API. Jobs
/// are kept pipelined in the pool up to `max_inflight` deep and finalized
/// in FIFO order; the streaming verdict is posted to each job's ticket
/// before paying for the stragglers' image capture.
fn drive<W: Workload + Sync + ?Sized>(
    workload: &W,
    pool_config: PoolConfig,
    shared: &Shared,
    index: usize,
    max_inflight: usize,
    share_isolated: bool,
) {
    let (mut local_version, initial) = {
        let st = shared
            .patches
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        (st.version, st.table.clone())
    };
    std::thread::scope(|scope| {
        // All drivers share the front-end registry, so every pool's
        // `pool/capture` samples aggregate into one fleet-visible
        // histogram next to the frontend/* stage instruments.
        let mut pool = ReplicaPool::scoped_with_obs(
            scope,
            workload,
            pool_config,
            initial,
            Arc::clone(&shared.obs),
        );
        let mut inflight: VecDeque<Inflight> = VecDeque::new();
        let served = catch_unwind(AssertUnwindSafe(|| {
            loop {
                // Top the pool's pipeline up from the queue — one lock
                // acquisition per refill, not per job — blocking only
                // when the pool has nothing to do at all.
                if inflight.len() < max_inflight {
                    let jobs =
                        shared.refill(index, max_inflight - inflight.len(), inflight.is_empty());
                    if !jobs.is_empty() {
                        sync_patches(shared, &mut pool, &mut local_version);
                    }
                    for job in jobs {
                        let dispatched = Instant::now();
                        shared
                            .queue_wait_hist
                            .record_duration(dispatched - job.enqueued);
                        let pool_job = pool.submit_shared(job.input, job.fault, job.seq);
                        inflight.push_back(Inflight {
                            pool_job,
                            seq: job.seq,
                            slot: job.slot,
                            verdict_posted: false,
                            dispatched,
                        });
                    }
                }
                // Empty after a (blocking-when-empty) top-up means the
                // queue is closed and drained. The front job stays in
                // `inflight` until its outcome is posted: if finalizing
                // panics, the Err path below must still see (and kill)
                // its ticket.
                let Some(front) = inflight.front() else {
                    break;
                };
                let (pool_job, seq) = (front.pool_job, front.seq);
                let dispatched = front.dispatched;
                let slot = Arc::clone(&front.slot);
                if !front.verdict_posted {
                    slot.post_verdict(pool.wait_verdict(pool_job));
                    shared.verdict_hist.record_duration(dispatched.elapsed());
                    inflight[0].verdict_posted = true;
                }
                // Quorums for pipelined successors form while the front
                // job's events are pumped; post them now rather than
                // head-of-line blocking each behind its predecessors'
                // full finalization. (A quorum forming *during* the
                // next_outcome below is still posted one finalization
                // late — eliminating that would need a pump hook.)
                post_ready_verdicts(&pool, shared, &mut inflight);
                let mut outcome = pool.next_outcome().expect("front job in flight");
                debug_assert_eq!(outcome.job, pool_job, "pool finalized out of order");
                // Tickets speak the front-end's global sequence, not the
                // pool-local job counter.
                outcome.job = seq;
                if outcome.outcome.error_observed() {
                    shared.failures.fetch_add(1, Ordering::Relaxed);
                }
                if share_isolated && outcome.outcome.report.is_some() {
                    // The pool just escalated its own isolated patches
                    // into its live table; fan them out to the siblings.
                    shared.fold_patches(pool.patches());
                }
                shared.completed.fetch_add(1, Ordering::Relaxed);
                shared.exec_hist.record_duration(dispatched.elapsed());
                slot.post_outcome(outcome);
                inflight.pop_front();
                post_ready_verdicts(&pool, shared, &mut inflight);
            }
        }));
        if let Err(payload) = served {
            // Fail fast for everyone still waiting on this driver, then
            // let the panic propagate to the front-end's join.
            for entry in inflight.drain(..) {
                entry.slot.kill();
            }
            shared.kill_queue(index);
            resume_unwind(payload);
        }
        pool.shutdown();
    });
}

/// One job the driver has submitted into its pool and not yet finalized.
struct Inflight {
    pool_job: u64,
    seq: u64,
    slot: Arc<TicketSlot>,
    verdict_posted: bool,
    /// When the driver dispatched the job into its pool — start of the
    /// verdict and exec latency stages.
    dispatched: Instant,
}

/// Posts the streaming verdict of every in-flight job whose quorum has
/// already formed (non-blocking; at most one `poll_verdict` per unposted
/// job).
fn post_ready_verdicts(pool: &ReplicaPool<'_>, shared: &Shared, inflight: &mut VecDeque<Inflight>) {
    for entry in inflight.iter_mut().filter(|e| !e.verdict_posted) {
        if let Some(verdict) = pool.poll_verdict(entry.pool_job) {
            entry.slot.post_verdict(Some(verdict));
            shared
                .verdict_hist
                .record_duration(entry.dispatched.elapsed());
            entry.verdict_posted = true;
        }
    }
}

/// Brings `pool`'s live table up to the shared version, if it moved.
fn sync_patches(shared: &Shared, pool: &mut ReplicaPool<'_>, local_version: &mut u64) {
    if shared.patch_version.load(Ordering::Acquire) == *local_version {
        return;
    }
    let st = shared
        .patches
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    *local_version = st.version;
    pool.load_patches(&st.table);
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_workloads::EspressoLike;

    #[test]
    fn ticket_slot_recovers_from_poisoned_lock() {
        use crate::pool::VoteTiming;
        use crate::voter::VoteResult;
        use crate::ReplicatedOutcome;

        let slot = Arc::new(TicketSlot::new());
        let poisoner = Arc::clone(&slot);
        let _ = std::thread::spawn(move || {
            let _cell = poisoner.cell.lock().unwrap();
            panic!("poison the ticket lock");
        })
        .join();
        assert!(slot.cell.lock().is_err(), "lock should be poisoned");
        // Posts and polls must still work: the front-end recovers the
        // cell state instead of cascading the panic to submitters.
        slot.post_verdict(None);
        slot.post_outcome(PoolOutcome {
            job: 7,
            outcome: ReplicatedOutcome {
                vote: VoteResult {
                    winner: Vec::new(),
                    agreeing: Vec::new(),
                    dissenting: Vec::new(),
                },
                patches: PatchTable::new(),
                report: None,
                replicas: Vec::new(),
            },
            timing: VoteTiming {
                outstanding_at_verdict: 0,
                verdict_latency: std::time::Duration::ZERO,
                full_latency: std::time::Duration::ZERO,
            },
        });
        let ticket = JobTicket {
            job: 7,
            slot: Arc::clone(&slot),
        };
        assert_eq!(ticket.try_poll().expect("outcome posted").job, 7);
        assert_eq!(ticket.wait().job, 7);
    }

    #[test]
    fn patch_state_recovers_from_poisoned_lock() {
        let workload = EspressoLike::new();
        std::thread::scope(|scope| {
            let frontend = PoolFrontend::scoped(
                scope,
                &workload,
                FrontendConfig {
                    pools: 1,
                    ..FrontendConfig::default()
                },
                PatchTable::new(),
            );
            let shared = Arc::clone(&frontend.shared);
            let _ = std::thread::spawn(move || {
                let _st = shared.patches.lock().unwrap();
                panic!("poison the patch lock");
            })
            .join();
            assert!(frontend.shared.patches.lock().is_err());
            // Epoch reads, table snapshots, and epoch loads all recover.
            assert_eq!(frontend.epoch(), 0);
            let _ = frontend.patches();
            assert!(!frontend.load_epoch(&PatchEpoch::default()));
            frontend.shutdown();
        });
    }

    #[test]
    fn frontend_serves_many_submitters() {
        let workload = EspressoLike::new();
        std::thread::scope(|scope| {
            let frontend = PoolFrontend::scoped(
                scope,
                &workload,
                FrontendConfig {
                    pools: 2,
                    queue_capacity: 2,
                    ..FrontendConfig::default()
                },
                PatchTable::new(),
            );
            std::thread::scope(|clients| {
                for t in 0..3u64 {
                    let frontend = &frontend;
                    clients.spawn(move || {
                        for i in 0..4 {
                            let out = frontend
                                .submit(&WorkloadInput::with_seed(t * 100 + i), None)
                                .wait();
                            assert!(out.outcome.vote.unanimous());
                        }
                    });
                }
            });
            let stats = frontend.stats();
            assert_eq!(stats.submitted, 12);
            assert_eq!(stats.completed, 12);
            assert_eq!(stats.failures, 0);
            // Every stage histogram saw every job exactly once.
            let snap = frontend.observability().snapshot();
            assert_eq!(snap.histogram("frontend/queue_wait").unwrap().count(), 12);
            assert_eq!(snap.histogram("frontend/verdict").unwrap().count(), 12);
            assert_eq!(snap.histogram("frontend/exec").unwrap().count(), 12);
            // The pools record into the same registry: one capture per
            // replica per job, aggregated across both pools.
            assert_eq!(snap.histogram("pool/capture").unwrap().count(), 12 * 3);
            frontend.shutdown();
        });
    }

    #[test]
    fn ticket_try_poll_and_verdict() {
        let workload = EspressoLike::new();
        std::thread::scope(|scope| {
            let frontend = PoolFrontend::scoped(
                scope,
                &workload,
                FrontendConfig {
                    pools: 1,
                    ..FrontendConfig::default()
                },
                PatchTable::new(),
            );
            let ticket = frontend.submit(&WorkloadInput::with_seed(7), None);
            let verdict = ticket.wait_verdict().expect("clean replicas reach quorum");
            assert!(!verdict.output.is_empty());
            // try_poll eventually observes the outcome without blocking
            // forever; wait() then consumes it.
            let outcome = loop {
                if let Some(out) = ticket.try_poll() {
                    break out;
                }
                std::thread::yield_now();
            };
            assert_eq!(outcome.job, ticket.job());
            assert_eq!(ticket.wait().outcome, outcome.outcome);
            frontend.shutdown();
        });
    }

    #[test]
    fn input_hash_routing_is_stable_and_in_range() {
        let a = WorkloadInput::with_seed(1).payload(b"abc".to_vec());
        let b = WorkloadInput::with_seed(2);
        for pools in 1..5 {
            assert_eq!(input_shard(&a, pools), input_shard(&a, pools));
            assert!(input_shard(&a, pools) < pools);
            assert!(input_shard(&b, pools) < pools);
        }
    }

    /// Driver death must not hang waiting submitters: tickets fail fast.
    #[test]
    fn dead_driver_fails_tickets_fast() {
        struct Panicker;
        impl Workload for Panicker {
            fn name(&self) -> &'static str {
                "panicker"
            }
            fn run(
                &self,
                _heap: &mut dyn xt_alloc::Heap,
                _input: &WorkloadInput,
            ) -> xt_workloads::RunResult {
                panic!("simulated replica crash outside the heap sandbox")
            }
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|scope| {
                let frontend = PoolFrontend::scoped(
                    scope,
                    &Panicker,
                    FrontendConfig {
                        pools: 1,
                        ..FrontendConfig::default()
                    },
                    PatchTable::new(),
                );
                let ticket = frontend.submit(&WorkloadInput::with_seed(1), None);
                let _ = ticket.wait(); // panics: driver died
            });
        }));
        assert!(result.is_err(), "a dead driver left its ticket hanging");
    }
}
