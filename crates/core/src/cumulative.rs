//! Cumulative mode (§3.4, §5): correction across many deployed runs.
//!
//! "Exterminator uses its third mode of operation, cumulative mode, which
//! isolates errors without replication or multiple identical executions."
//! Each run is reduced to a [`RunSummary`](xt_isolate::cumulative::RunSummary)
//! — a few hundred bytes of per-site statistics instead of a heap image —
//! and the Bayesian classifier accumulates them until an allocation site
//! crosses the `cN − 1` likelihood threshold, at which point patches are
//! generated and applied to subsequent runs.

use xt_diefast::DieFastConfig;
use xt_faults::FaultSpec;
use xt_isolate::cumulative::{summarize_run, CumulativeConfig, CumulativeIsolator, Verdict};
use xt_patch::PatchTable;
use xt_workloads::{Workload, WorkloadInput};

use crate::runner::RunConfig;

/// Configuration for the cumulative-mode driver.
#[derive(Clone, Debug)]
pub struct CumulativeModeConfig {
    /// Base seed; every run gets a fresh heap seed derived from it.
    pub base_seed: u64,
    /// Canary fill probability `p` (§5.2 default: 1/2).
    pub fill_probability: f64,
    /// Classifier parameters (prior constant `c`, integration steps).
    pub isolator: CumulativeConfig,
    /// Give each run a different workload seed, modelling the
    /// nondeterministic inputs of deployed use (the Mozilla scenario).
    pub vary_input_seed: bool,
    /// Heap multiplier `M` for the runs (paper default 2).
    pub multiplier: f64,
}

impl Default for CumulativeModeConfig {
    fn default() -> Self {
        let isolator = CumulativeConfig::default();
        CumulativeModeConfig {
            base_seed: 0xC0_5EED,
            fill_probability: isolator.fill_probability,
            isolator,
            vary_input_seed: false,
            multiplier: 2.0,
        }
    }
}

/// Everything one deployed client execution produces: the failure flag
/// and the compact per-site statistics to report upstream.
#[derive(Clone, Debug)]
pub struct SummarizedRun {
    /// Whether the run failed (signal or crash).
    pub failed: bool,
    /// Final allocation clock.
    pub clock: xt_alloc::AllocTime,
    /// The §5 per-site summary — the payload a fleet client submits.
    pub summary: xt_isolate::cumulative::RunSummary,
}

/// Executes **one** deployed run under `patches` and reduces it to a
/// [`RunSummary`](xt_isolate::cumulative::RunSummary) — the reusable
/// single-run entry point. [`CumulativeMode::run_once`] wraps this for the
/// single-user loop; `xt-fleet` simulator clients call it directly and
/// ship the summary to the aggregation service instead of folding it into
/// local state.
#[must_use]
pub fn summarized_run(
    workload: &dyn Workload,
    input: &WorkloadInput,
    fault: Option<FaultSpec>,
    patches: PatchTable,
    heap_seed: u64,
    fill_probability: f64,
    multiplier: f64,
) -> SummarizedRun {
    summarized_run_reusable(
        workload,
        input,
        fault,
        patches,
        heap_seed,
        fill_probability,
        multiplier,
        &mut crate::runner::ReusableStack::new(),
    )
}

/// [`summarized_run`] over a caller-held [`ReusableStack`]: identical
/// behaviour, but the simulated address space is reset and reused between
/// runs instead of rebuilt. A long-lived deployed client (or a
/// fleet-simulator client thread executing hundreds of rounds) keeps one
/// stack for its whole lifetime, like a real process keeps its page
/// tables.
///
/// [`ReusableStack`]: crate::runner::ReusableStack
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn summarized_run_reusable(
    workload: &dyn Workload,
    input: &WorkloadInput,
    fault: Option<FaultSpec>,
    patches: PatchTable,
    heap_seed: u64,
    fill_probability: f64,
    multiplier: f64,
    stack: &mut crate::runner::ReusableStack,
) -> SummarizedRun {
    let mut diefast = DieFastConfig::cumulative_with_seed(heap_seed);
    diefast.fill_probability = fill_probability;
    diefast.heap.multiplier = multiplier;
    let run_config = RunConfig {
        heap_seed,
        diefast,
        patches,
        fault,
        breakpoint: None,
        halt_on_signal: true,
    };
    let rec = crate::runner::execute_reusable(workload, input, run_config, stack);
    let failed = rec.failed();
    let history = rec
        .history
        .as_ref()
        .expect("cumulative runs require history tracking");
    let summary = summarize_run(&rec.image, history, failed, fill_probability);
    SummarizedRun {
        failed,
        clock: rec.clock,
        summary,
    }
}

/// What one deployed run contributed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunDigest {
    /// 1-based run number.
    pub run: usize,
    /// Whether it failed (signal or crash).
    pub failed: bool,
    /// Whether any site is flagged after folding this run in.
    pub isolated: bool,
}

/// The outcome of driving cumulative mode to isolation (or exhaustion).
#[derive(Clone, Debug)]
pub struct CumulativeOutcome {
    /// Total runs performed.
    pub runs: usize,
    /// Failed runs among them.
    pub failures: usize,
    /// Whether some site was flagged.
    pub isolated: bool,
    /// The generated patches (empty unless isolated).
    pub patches: PatchTable,
    /// Verdicts for flagged sites.
    pub flagged: Vec<Verdict>,
}

/// The cumulative-mode driver: owns the accumulated state across runs.
#[derive(Clone, Debug)]
pub struct CumulativeMode {
    config: CumulativeModeConfig,
    isolator: CumulativeIsolator,
    run_counter: u64,
}

impl CumulativeMode {
    /// Creates a driver with empty accumulated state.
    #[must_use]
    pub fn new(config: CumulativeModeConfig) -> Self {
        let mut isolator_config = config.isolator;
        isolator_config.fill_probability = config.fill_probability;
        CumulativeMode {
            isolator: CumulativeIsolator::new(isolator_config),
            config,
            run_counter: 0,
        }
    }

    /// The accumulated per-site statistics.
    #[must_use]
    pub fn isolator(&self) -> &CumulativeIsolator {
        &self.isolator
    }

    /// Patches for all currently flagged sites.
    #[must_use]
    pub fn patches(&self) -> PatchTable {
        self.isolator.generate_patches()
    }

    /// All flagged verdicts (overflow and dangling families).
    #[must_use]
    pub fn flagged(&self) -> Vec<Verdict> {
        self.isolator
            .overflow_verdicts()
            .into_iter()
            .chain(self.isolator.dangling_verdicts())
            .filter(|v| v.flagged)
            .collect()
    }

    /// Executes one deployed run: fresh heap seed, current patches
    /// applied, summary folded into the accumulated state.
    pub fn run_once(
        &mut self,
        workload: &dyn Workload,
        input: &WorkloadInput,
        fault: Option<FaultSpec>,
    ) -> RunDigest {
        self.run_counter += 1;
        let heap_seed = self
            .config
            .base_seed
            .wrapping_add(self.run_counter.wrapping_mul(0xD1B5_4A32_D192_ED03));
        let mut run_input = input.clone();
        if self.config.vary_input_seed {
            run_input.seed = input.seed.wrapping_add(self.run_counter);
        }
        let run = summarized_run(
            workload,
            &run_input,
            fault,
            self.patches(),
            heap_seed,
            self.config.fill_probability,
            self.config.multiplier,
        );
        self.isolator.record_run(&run.summary);
        RunDigest {
            run: self.run_counter as usize,
            failed: run.failed,
            isolated: !self.flagged().is_empty(),
        }
    }

    /// Persists the accumulated statistics next to the patch file, so a
    /// later process can continue where this one stopped — §3.4:
    /// "Exterminator computes relevant statistics about each run and
    /// stores them in its patch file."
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_state(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.isolator.to_text())
    }

    /// Restores a driver from state written by [`CumulativeMode::save_state`].
    /// The run counter resumes from the recorded run count.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; parse failures surface as `InvalidData`.
    pub fn load_state(
        config: CumulativeModeConfig,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let isolator = CumulativeIsolator::from_text(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        let run_counter = isolator.runs() as u64;
        Ok(CumulativeMode {
            config,
            isolator,
            run_counter,
        })
    }

    /// Runs until some site is flagged or `max_runs` is exhausted.
    pub fn run_until_isolated(
        &mut self,
        workload: &dyn Workload,
        input: &WorkloadInput,
        fault: Option<FaultSpec>,
        max_runs: usize,
    ) -> CumulativeOutcome {
        let mut isolated = false;
        for _ in 0..max_runs {
            let digest = self.run_once(workload, input, fault);
            if digest.isolated {
                isolated = true;
                break;
            }
        }
        CumulativeOutcome {
            runs: self.isolator.runs(),
            failures: self.isolator.failures(),
            isolated,
            patches: self.patches(),
            flagged: self.flagged(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_faults::FaultKind;
    use xt_workloads::{attack_browsing_session, EspressoLike, MozillaLike};

    #[test]
    fn state_survives_process_restart() {
        // Deployment story: run a few times, "exit", restart from the
        // saved state, and keep accumulating toward isolation.
        let dir = std::env::temp_dir().join("xt_cumulative_state");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.txt");
        let input = WorkloadInput::with_seed(4);
        let mut first = CumulativeMode::new(CumulativeModeConfig::default());
        for _ in 0..5 {
            first.run_once(&EspressoLike::new(), &input, None);
        }
        first.save_state(&path).unwrap();
        let mut resumed =
            CumulativeMode::load_state(CumulativeModeConfig::default(), &path).unwrap();
        assert_eq!(resumed.isolator().runs(), 5);
        let digest = resumed.run_once(&EspressoLike::new(), &input, None);
        assert_eq!(digest.run, 6, "run counter must resume");
        assert_eq!(resumed.isolator().runs(), 6);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn clean_runs_never_flag_anything() {
        let mut mode = CumulativeMode::new(CumulativeModeConfig::default());
        for _ in 0..10 {
            let digest = mode.run_once(&EspressoLike::new(), &WorkloadInput::with_seed(4), None);
            assert!(!digest.failed, "clean run failed");
            assert!(!digest.isolated, "false positive");
        }
        assert_eq!(mode.isolator().runs(), 10);
        assert_eq!(mode.isolator().failures(), 0);
        assert!(mode.patches().is_empty());
    }

    #[test]
    fn injected_overflow_is_isolated_across_runs() {
        // Cumulative isolation discriminates by how *unlikely* the culprit
        // site's placement evidence is, so its strength depends on the
        // site's allocation volume — the paper observes exactly this in
        // the second Mozilla study ("the site that produces the overflowed
        // object allocates more correct objects, making it harder to
        // identify it as erroneous"). Select a fault whose culprit comes
        // from a *cold* site, like Mozilla's rarely-executed IDN path.
        let input = WorkloadInput::with_seed(6).intensity(3);
        let reference = {
            let mut config = crate::runner::RunConfig::with_seed(424242);
            config.diefast = DieFastConfig::cumulative_with_seed(424242);
            crate::runner::execute(&EspressoLike::new(), &input, config)
        };
        let history = reference.history.expect("history tracked");
        let mut fault = None;
        for t in (120..500u64).step_by(7) {
            let Some(rec) = history.get(xt_alloc::ObjectId::from_raw(t)) else {
                continue;
            };
            let site_objects = history.records_from_site(rec.alloc_site).count();
            if site_objects > 3 {
                continue; // hot site: weak per-run evidence
            }
            let candidate = crate::runner::find_manifesting_fault(
                &EspressoLike::new(),
                &input,
                FaultKind::BufferOverflow {
                    delta: 20,
                    fill: 0xEE,
                },
                t,
                t + 1,
                1,
                6,
                11,
            );
            if candidate.is_some() {
                fault = candidate;
                break;
            }
        }
        let fault = fault.expect("no manifesting cold-site overflow found");
        let mut mode = CumulativeMode::new(CumulativeModeConfig::default());
        let outcome = mode.run_until_isolated(&EspressoLike::new(), &input, Some(fault), 250);
        assert!(outcome.isolated, "never isolated in {} runs", outcome.runs);
        assert!(
            !outcome.patches.is_empty(),
            "flagged but no patch generated"
        );
        assert!(outcome.failures >= 2, "failures: {}", outcome.failures);
    }

    #[test]
    fn mozilla_attack_is_isolated_despite_nondeterminism() {
        let input = WorkloadInput::with_seed(50).payload(attack_browsing_session(4));
        let mut mode = CumulativeMode::new(CumulativeModeConfig {
            vary_input_seed: true,
            ..CumulativeModeConfig::default()
        });
        let outcome = mode.run_until_isolated(&MozillaLike::new(), &input, None, 120);
        assert!(outcome.isolated, "IDN overflow never isolated");
        let pads: Vec<_> = outcome.patches.pads().collect();
        assert!(!pads.is_empty(), "no pad generated: {:?}", outcome.flagged);
        // The pad must cover the 8-byte overflow.
        assert!(
            pads.iter().any(|&(_, p)| p >= 8),
            "pads too small: {pads:?}"
        );
    }
}
