//! Replicated mode (§3.4, Fig. 5): on-the-fly correction with voting.
//!
//! "Like DieHard, Exterminator can run a number of differently-randomized
//! replicas simultaneously (as separate processes), broadcasting inputs to
//! all and voting on their outputs. However, Exterminator uses
//! DieFast-based heaps, each with a correcting allocator. This
//! organization lets Exterminator discover and fix errors."
//!
//! Replicas here are threads, each owning a fully isolated allocator stack
//! over its own simulated address space; outputs are compared by the
//! plurality [voter](crate::voter). A DieFast signal, a crash, or output
//! divergence triggers isolation over the replicas' heap images, and the
//! resulting patches are returned for hot reload into running correcting
//! allocators.

use xt_diefast::DieFastConfig;
use xt_faults::FaultSpec;
use xt_image::HeapImage;
use xt_isolate::iterative::{isolate_with, IsolateOptions};
use xt_isolate::IsolationReport;
use xt_patch::PatchTable;
use xt_workloads::{Workload, WorkloadInput};

use crate::runner::{execute, RunConfig};
use crate::voter::{vote, VoteResult};

/// Configuration for one replicated execution.
#[derive(Clone, Debug)]
pub struct ReplicatedConfig {
    /// Number of replicas (the paper's experiments use 3).
    pub replicas: usize,
    /// Base seed; replica `i` randomizes its heap with a seed derived
    /// from it.
    pub base_seed: u64,
    /// DieFast configuration shared by all replicas (`p = 1`).
    pub diefast: DieFastConfig,
    /// Isolation tuning.
    pub options: IsolateOptions,
}

impl Default for ReplicatedConfig {
    fn default() -> Self {
        ReplicatedConfig {
            replicas: 3,
            base_seed: 0x2E11_11CA,
            diefast: DieFastConfig::with_seed(0),
            options: IsolateOptions::default(),
        }
    }
}

/// Per-replica digest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplicaSummary {
    /// The replica's heap seed.
    pub seed: u64,
    /// Whether its run completed.
    pub completed: bool,
    /// Whether it failed (signal or crash).
    pub failed: bool,
    /// Number of DieFast signals it raised.
    pub signals: usize,
    /// Length of its output stream.
    pub output_len: usize,
}

/// The outcome of one replicated execution.
#[derive(Clone, Debug)]
pub struct ReplicatedOutcome {
    /// The voter's verdict over replica outputs.
    pub vote: VoteResult,
    /// Patches generated from this execution's images (empty if all
    /// replicas agreed and none failed).
    pub patches: PatchTable,
    /// The isolation report, when isolation ran.
    pub report: Option<IsolationReport>,
    /// Per-replica digests, in replica order.
    pub replicas: Vec<ReplicaSummary>,
}

impl ReplicatedOutcome {
    /// `true` if any replica failed or diverged.
    #[must_use]
    pub fn error_observed(&self) -> bool {
        !self.vote.unanimous() || self.replicas.iter().any(|r| r.failed)
    }
}

/// Runs `workload` over `config.replicas` differently-randomized replicas
/// in parallel, votes on their outputs, and — on any failure or
/// divergence — isolates errors from the replicas' heap images.
///
/// `patches` are the currently loaded runtime patches; each replica's
/// correcting allocator applies them, and any newly generated patches are
/// merged into the returned table (ready for a hot reload).
pub fn run_replicated<W: Workload + Sync + ?Sized>(
    workload: &W,
    input: &WorkloadInput,
    fault: Option<FaultSpec>,
    patches: &PatchTable,
    config: &ReplicatedConfig,
) -> ReplicatedOutcome {
    let n = config.replicas.max(1);
    let seeds: Vec<u64> = (0..n)
        .map(|i| {
            config
                .base_seed
                .wrapping_add((i as u64 + 1).wrapping_mul(0xA5A5_1234_9E37_79B9))
        })
        .collect();

    // One isolated allocator stack per replica, run in parallel threads —
    // the stand-in for the paper's replica processes.
    let records: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                let run_config = RunConfig {
                    heap_seed: seed,
                    diefast: config.diefast.clone(),
                    patches: patches.clone(),
                    fault,
                    breakpoint: None,
                    halt_on_signal: false,
                };
                let input = input.clone();
                scope.spawn(move || execute(&workload, &input, run_config))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("replica thread panicked"))
            .collect()
    });

    let outputs: Vec<Vec<u8>> = records.iter().map(|r| r.result.output.clone()).collect();
    let vote = vote(&outputs);

    let replicas: Vec<ReplicaSummary> = records
        .iter()
        .zip(&seeds)
        .map(|(r, &seed)| ReplicaSummary {
            seed,
            completed: r.result.completed(),
            failed: r.failed(),
            signals: r.signals.len(),
            output_len: r.result.output.len(),
        })
        .collect();

    let any_failure = !vote.unanimous() || replicas.iter().any(|r| r.failed);
    let mut merged = patches.clone();
    let report = if any_failure {
        let images: Vec<HeapImage> = records.into_iter().map(|r| r.image).collect();
        let report = isolate_with(&images, config.options).unwrap_or_default();
        // Escalate rather than max: deferrals isolated while patches were
        // loaded are measured from the already-deferred free time (§6.2).
        merged.escalate(&report.to_patches());
        Some(report)
    } else {
        None
    };

    ReplicatedOutcome {
        vote,
        patches: merged,
        report,
        replicas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_alloc::AllocTime;
    use xt_faults::{FaultKind, FaultSpec};
    use xt_workloads::EspressoLike;

    #[test]
    fn clean_replicas_agree_unanimously() {
        let outcome = run_replicated(
            &EspressoLike::new(),
            &WorkloadInput::with_seed(3),
            None,
            &PatchTable::new(),
            &ReplicatedConfig::default(),
        );
        assert!(outcome.vote.unanimous(), "replicas diverged on clean run");
        assert!(!outcome.error_observed());
        assert!(outcome.report.is_none());
        assert!(outcome.patches.is_empty());
        assert_eq!(outcome.replicas.len(), 3);
        assert!(outcome.replicas.iter().all(|r| r.completed && !r.failed));
    }

    #[test]
    fn injected_overflow_is_observed_and_patched() {
        // Not every manifesting fault leaves canary evidence in replica
        // images (overflows onto live objects abort without corruption);
        // search candidates like the paper searches injector seeds.
        let input = WorkloadInput::with_seed(8).intensity(3);
        let mut success = false;
        'candidates: for sel in 0..8u64 {
            let Some(fault) = crate::runner::find_manifesting_fault(
                &EspressoLike::new(),
                &input,
                FaultKind::BufferOverflow {
                    delta: 20,
                    fill: 0xEE,
                },
                100,
                300,
                20,
                4,
                5 + sel,
            ) else {
                continue;
            };
            let outcome = run_replicated(
                &EspressoLike::new(),
                &input,
                Some(fault),
                &PatchTable::new(),
                &ReplicatedConfig {
                    replicas: 6,
                    ..ReplicatedConfig::default()
                },
            );
            if !outcome.error_observed() {
                continue;
            }
            let report = outcome.report.as_ref().expect("isolation ran");
            if report.overflows.is_empty() && report.dangling.is_empty() {
                continue;
            }
            // Deployment story: patches accumulate across executions until
            // the error stops manifesting.
            let mut patches = outcome.patches.clone();
            for round in 0..5u64 {
                let next = run_replicated(
                    &EspressoLike::new(),
                    &input,
                    Some(fault),
                    &patches,
                    &ReplicatedConfig {
                        replicas: 6,
                        base_seed: 0x5EED_0002 + round,
                        ..ReplicatedConfig::default()
                    },
                );
                if !next.error_observed() {
                    success = true;
                    break 'candidates;
                }
                patches = next.patches;
            }
        }
        assert!(success, "no candidate fault was isolated and repaired");
    }

    #[test]
    fn voter_reports_majority_on_divergence() {
        // Even when a fault only corrupts data (no crash), the voter's
        // plurality output is the clean majority's.
        let fault = FaultSpec {
            kind: FaultKind::BufferOverflow {
                delta: 8,
                fill: 0x44,
            },
            trigger: AllocTime::from_raw(90),
        };
        let outcome = run_replicated(
            &EspressoLike::new(),
            &WorkloadInput::with_seed(14),
            Some(fault),
            &PatchTable::new(),
            &ReplicatedConfig {
                replicas: 5,
                ..ReplicatedConfig::default()
            },
        );
        assert_eq!(outcome.replicas.len(), 5);
        // Regardless of which replicas got hit, a plurality winner exists.
        assert!(!outcome.vote.winner.is_empty() || outcome.vote.agreeing.len() >= 3);
    }
}
