//! Replicated mode (§3.4, Fig. 5): on-the-fly correction with voting.
//!
//! "Like DieHard, Exterminator can run a number of differently-randomized
//! replicas simultaneously (as separate processes), broadcasting inputs to
//! all and voting on their outputs. However, Exterminator uses
//! DieFast-based heaps, each with a correcting allocator. This
//! organization lets Exterminator discover and fix errors."
//!
//! [`run_replicated`] is the one-shot convenience entry: it stands up a
//! [`ReplicaPool`](crate::pool::ReplicaPool) for a single input, collects
//! the outcome, and tears the pool down. Long-lived deployments — many
//! inputs, streaming vote verdicts, fleet patch-epoch hot reloads — should
//! hold a pool directly; see [`crate::pool`].

use xt_diefast::DieFastConfig;
use xt_faults::FaultSpec;
use xt_isolate::iterative::IsolateOptions;
use xt_isolate::IsolationReport;
use xt_patch::PatchTable;
use xt_workloads::{Workload, WorkloadInput};

use crate::pool::{PoolConfig, ReplicaPool};
use crate::voter::VoteResult;

/// Configuration for one replicated execution.
#[derive(Clone, Debug)]
pub struct ReplicatedConfig {
    /// Number of replicas (the paper's experiments use 3).
    pub replicas: usize,
    /// Base seed; replica `i` randomizes its heap with a seed derived
    /// from it.
    pub base_seed: u64,
    /// DieFast configuration shared by all replicas (`p = 1`).
    pub diefast: DieFastConfig,
    /// Isolation tuning.
    pub options: IsolateOptions,
}

impl Default for ReplicatedConfig {
    fn default() -> Self {
        ReplicatedConfig {
            replicas: 3,
            base_seed: 0x2E11_11CA,
            diefast: DieFastConfig::with_seed(0),
            options: IsolateOptions::default(),
        }
    }
}

impl ReplicatedConfig {
    /// The pool configuration equivalent to this one-shot configuration.
    #[must_use]
    pub fn to_pool_config(&self) -> PoolConfig {
        PoolConfig {
            replicas: self.replicas,
            base_seed: self.base_seed,
            diefast: self.diefast.clone(),
            options: self.options,
            ..PoolConfig::default()
        }
    }
}

/// Per-replica digest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplicaSummary {
    /// The replica's heap seed.
    pub seed: u64,
    /// Whether its run completed.
    pub completed: bool,
    /// Whether it failed (signal or crash).
    pub failed: bool,
    /// Number of DieFast signals it raised.
    pub signals: usize,
    /// Length of its output stream.
    pub output_len: usize,
    /// 128-bit digest of its output stream (the streaming voter's unit of
    /// comparison; byte-identical across runs with identical seeds).
    pub output_digest: u128,
}

/// The outcome of one replicated execution. Equality covers the full
/// deterministic surface — vote, patches, isolation report, replica
/// digests — so the pool's determinism tests can compare outcomes whole.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplicatedOutcome {
    /// The voter's verdict over replica outputs.
    pub vote: VoteResult,
    /// Patches generated from this execution's images (empty if all
    /// replicas agreed and none failed).
    pub patches: PatchTable,
    /// The isolation report, when isolation ran.
    pub report: Option<IsolationReport>,
    /// Per-replica digests, in replica order.
    pub replicas: Vec<ReplicaSummary>,
}

impl ReplicatedOutcome {
    /// `true` if any replica failed or diverged.
    #[must_use]
    pub fn error_observed(&self) -> bool {
        !self.vote.unanimous() || self.replicas.iter().any(|r| r.failed)
    }

    /// A canonical 128-bit digest of the outcome's full deterministic
    /// surface — everything `PartialEq` compares: vote, patches,
    /// isolation report, and per-replica summaries. Equal outcomes always
    /// produce equal digests, and every field is folded behind its length
    /// or a presence tag so distinct outcomes cannot collide by field
    /// concatenation.
    ///
    /// This is the unit the network front door pins determinism with: a
    /// remote submission's digest must be byte-identical to the digest of
    /// the same input run in-process at the same global sequence number,
    /// without shipping whole heap-image-sized outcomes back for
    /// comparison.
    #[must_use]
    pub fn deterministic_digest(&self) -> u128 {
        fn fold(h: u128, bytes: &[u8]) -> u128 {
            crate::voter::digest_chunk(h, bytes)
        }
        fn fold_u64(h: u128, v: u64) -> u128 {
            fold(h, &v.to_le_bytes())
        }

        let mut h = crate::voter::empty_digest();
        h = fold_u64(h, self.vote.winner.len() as u64);
        h = fold(h, &self.vote.winner);
        h = fold_u64(h, self.vote.agreeing.len() as u64);
        for &i in &self.vote.agreeing {
            h = fold_u64(h, i as u64);
        }
        h = fold_u64(h, self.vote.dissenting.len() as u64);
        for &i in &self.vote.dissenting {
            h = fold_u64(h, i as u64);
        }

        // The patch lattice serializes deterministically (BTreeMap-backed
        // text form).
        let patches = self.patches.to_text();
        h = fold_u64(h, patches.len() as u64);
        h = fold(h, patches.as_bytes());

        match &self.report {
            None => h = fold(h, &[0]),
            Some(report) => {
                h = fold(h, &[1]);
                h = fold_u64(h, report.overflows.len() as u64);
                for o in &report.overflows {
                    h = fold_u64(h, o.culprit_id.raw());
                    h = fold_u64(h, u64::from(o.alloc_site.raw()));
                    h = fold_u64(h, u64::from(o.requested));
                    h = fold_u64(h, o.max_extent);
                    h = fold_u64(h, u64::from(o.pad));
                    h = fold_u64(h, o.score.to_bits());
                    h = fold_u64(h, o.evidence_bytes);
                }
                h = fold_u64(h, report.dangling.len() as u64);
                for d in &report.dangling {
                    h = fold_u64(h, d.object_id.raw());
                    h = fold_u64(h, u64::from(d.alloc_site.raw()));
                    h = fold_u64(h, u64::from(d.free_site.raw()));
                    h = fold_u64(h, d.free_time.raw());
                    h = fold_u64(h, d.last_alloc_time.raw());
                    h = fold_u64(h, d.deferral);
                }
            }
        }

        h = fold_u64(h, self.replicas.len() as u64);
        for r in &self.replicas {
            h = fold_u64(h, r.seed);
            h = fold(h, &[u8::from(r.completed), u8::from(r.failed)]);
            h = fold_u64(h, r.signals as u64);
            h = fold_u64(h, r.output_len as u64);
            h = fold(h, &r.output_digest.to_le_bytes());
        }
        h
    }
}

/// Runs `workload` over `config.replicas` differently-randomized replicas
/// in parallel, votes on their outputs, and — on any failure or
/// divergence — isolates errors from the replicas' heap images.
///
/// `patches` are the currently loaded runtime patches; each replica's
/// correcting allocator applies them, and any newly generated patches are
/// merged into the returned table (ready for a hot reload).
///
/// This is a thin wrapper over a one-shot [`ReplicaPool`]; callers
/// executing more than one input should keep a pool alive instead of
/// paying a replica-set setup per call.
pub fn run_replicated<W: Workload + Sync + ?Sized>(
    workload: &W,
    input: &WorkloadInput,
    fault: Option<FaultSpec>,
    patches: &PatchTable,
    config: &ReplicatedConfig,
) -> ReplicatedOutcome {
    std::thread::scope(|scope| {
        let mut pool =
            ReplicaPool::scoped(scope, workload, config.to_pool_config(), patches.clone());
        let outcome = pool.run_one(input, fault).outcome;
        pool.shutdown();
        outcome
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_alloc::AllocTime;
    use xt_faults::{FaultKind, FaultSpec};
    use xt_workloads::EspressoLike;

    #[test]
    fn clean_replicas_agree_unanimously() {
        let outcome = run_replicated(
            &EspressoLike::new(),
            &WorkloadInput::with_seed(3),
            None,
            &PatchTable::new(),
            &ReplicatedConfig::default(),
        );
        assert!(outcome.vote.unanimous(), "replicas diverged on clean run");
        assert!(!outcome.error_observed());
        assert!(outcome.report.is_none());
        assert!(outcome.patches.is_empty());
        assert_eq!(outcome.replicas.len(), 3);
        assert!(outcome.replicas.iter().all(|r| r.completed && !r.failed));
        // All replicas produced the same output digest as the winner.
        let digest = crate::voter::output_digest(&outcome.vote.winner);
        assert!(outcome.replicas.iter().all(|r| r.output_digest == digest));
    }

    /// The network determinism unit: equal outcomes digest equally, and
    /// every deterministic field is load-bearing — flipping any one of
    /// them moves the digest.
    #[test]
    fn deterministic_digest_tracks_every_field() {
        let base = ReplicatedOutcome {
            vote: crate::voter::VoteResult {
                winner: b"out".to_vec(),
                agreeing: vec![0, 2],
                dissenting: vec![1],
            },
            patches: PatchTable::new(),
            report: None,
            replicas: vec![ReplicaSummary {
                seed: 7,
                completed: true,
                failed: false,
                signals: 1,
                output_len: 3,
                output_digest: 0xAB,
            }],
        };
        assert_eq!(
            base.deterministic_digest(),
            base.clone().deterministic_digest(),
            "equal outcomes must digest equally"
        );

        let mut variants = Vec::new();
        let mut v = base.clone();
        v.vote.winner = b"out!".to_vec();
        variants.push(v);
        let mut v = base.clone();
        v.vote.agreeing = vec![0];
        variants.push(v);
        let mut v = base.clone();
        v.patches.add_pad(xt_alloc::SiteHash::from_raw(0xF00D), 8);
        variants.push(v);
        let mut v = base.clone();
        v.report = Some(IsolationReport {
            overflows: Vec::new(),
            dangling: Vec::new(),
        });
        variants.push(v);
        let mut v = base.clone();
        v.replicas[0].failed = true;
        variants.push(v);
        let mut v = base.clone();
        v.replicas[0].output_digest = 0xAC;
        variants.push(v);

        let digest = base.deterministic_digest();
        for (i, variant) in variants.iter().enumerate() {
            assert_ne!(
                variant.deterministic_digest(),
                digest,
                "variant {i} was invisible to the digest"
            );
        }
    }

    #[test]
    fn injected_overflow_is_observed_and_patched() {
        // Not every manifesting fault leaves canary evidence in replica
        // images (overflows onto live objects abort without corruption);
        // search candidates like the paper searches injector seeds.
        let input = WorkloadInput::with_seed(8).intensity(3);
        let mut success = false;
        'candidates: for sel in 0..8u64 {
            let Some(fault) = crate::runner::find_manifesting_fault(
                &EspressoLike::new(),
                &input,
                FaultKind::BufferOverflow {
                    delta: 20,
                    fill: 0xEE,
                },
                100,
                300,
                20,
                4,
                5 + sel,
            ) else {
                continue;
            };
            let outcome = run_replicated(
                &EspressoLike::new(),
                &input,
                Some(fault),
                &PatchTable::new(),
                &ReplicatedConfig {
                    replicas: 6,
                    ..ReplicatedConfig::default()
                },
            );
            if !outcome.error_observed() {
                continue;
            }
            let report = outcome.report.as_ref().expect("isolation ran");
            if report.overflows.is_empty() && report.dangling.is_empty() {
                continue;
            }
            // Deployment story: patches accumulate across executions until
            // the error stops manifesting.
            let mut patches = outcome.patches.clone();
            for round in 0..5u64 {
                let next = run_replicated(
                    &EspressoLike::new(),
                    &input,
                    Some(fault),
                    &patches,
                    &ReplicatedConfig {
                        replicas: 6,
                        base_seed: 0x5EED_0002 + round,
                        ..ReplicatedConfig::default()
                    },
                );
                if !next.error_observed() {
                    success = true;
                    break 'candidates;
                }
                patches = next.patches;
            }
        }
        assert!(success, "no candidate fault was isolated and repaired");
    }

    #[test]
    fn voter_reports_clean_majority_output_on_divergence() {
        // Even when a fault only corrupts data (no crash), the voter's
        // plurality output must be the *correct* one: byte-identical to a
        // clean reference run of the same input. (The paper's §3.1 voter
        // only releases output agreed by a plurality — agreeing on wrong
        // output would defeat it.)
        let input = WorkloadInput::with_seed(14);
        let reference = crate::runner::execute(
            &EspressoLike::new(),
            &input,
            crate::runner::RunConfig::with_seed(0x000C_1EA0),
        );
        assert!(
            reference.result.completed() && !reference.failed(),
            "reference run must be clean"
        );
        let fault = FaultSpec {
            kind: FaultKind::BufferOverflow {
                delta: 8,
                fill: 0x44,
            },
            trigger: AllocTime::from_raw(90),
        };
        let outcome = run_replicated(
            &EspressoLike::new(),
            &input,
            Some(fault),
            &PatchTable::new(),
            &ReplicatedConfig {
                replicas: 5,
                ..ReplicatedConfig::default()
            },
        );
        assert_eq!(outcome.replicas.len(), 5);
        // A strict majority must agree, and the winner must be the clean
        // output — not merely *some* plurality.
        assert!(
            outcome.vote.agreeing.len() >= 3,
            "no majority among 5 replicas: {:?}",
            outcome.vote.agreeing
        );
        assert_eq!(
            outcome.vote.winner, reference.result.output,
            "plurality output differs from the clean reference run"
        );
    }
}
