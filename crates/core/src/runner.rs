//! Shared run machinery: builds the allocator stack, executes one
//! workload run, and captures everything the modes need afterwards.

use xt_alloc::{AllocTime, Heap as _};
use xt_correct::CorrectingHeap;
use xt_diefast::{DieFastConfig, DieFastHeap, ErrorSignal};
use xt_diehard::ObjectLog;
use xt_faults::{FaultSpec, FaultyHeap, InjectedEvent};
use xt_image::HeapImage;
use xt_patch::PatchTable;
use xt_workloads::{CrashKind, RunOutcome, RunResult, Workload, WorkloadInput};

/// Configuration for one execution.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Heap randomization seed for this run/replica.
    pub heap_seed: u64,
    /// DieFast configuration (fill probability, zero-fill, history).
    pub diefast: DieFastConfig,
    /// Runtime patches to apply.
    pub patches: PatchTable,
    /// Fault to inject, if any.
    pub fault: Option<FaultSpec>,
    /// Malloc breakpoint: stop when the allocation clock reaches this
    /// value (iterative replays, §3.4).
    pub breakpoint: Option<AllocTime>,
    /// Stop at the first DieFast signal (iterative discovery runs).
    pub halt_on_signal: bool,
}

impl RunConfig {
    /// A plain run: given seed, no patches, no faults, no stops.
    #[must_use]
    pub fn with_seed(heap_seed: u64) -> Self {
        RunConfig {
            heap_seed,
            diefast: DieFastConfig::with_seed(heap_seed),
            patches: PatchTable::new(),
            fault: None,
            breakpoint: None,
            halt_on_signal: false,
        }
    }
}

/// Everything captured from one execution. Two records compare equal when
/// the executions were observationally identical — result, signals, heap
/// image, history, injection log, and clock (the reused-stack determinism
/// tests rely on this).
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// The workload's outcome and output.
    pub result: RunResult,
    /// DieFast error signals raised during the run.
    pub signals: Vec<ErrorSignal>,
    /// Heap image captured at the end (completion, crash, or breakpoint) —
    /// the dump a real Exterminator writes from its signal handler.
    pub image: HeapImage,
    /// Full allocation history, when the configuration tracked it.
    pub history: Option<ObjectLog>,
    /// What the fault injector did.
    pub injected: Vec<InjectedEvent>,
    /// Final allocation clock.
    pub clock: AllocTime,
}

impl RunRecord {
    /// Whether this run counts as a *failure* for the runtime: a DieFast
    /// signal, or any crash other than the malloc breakpoint (which is the
    /// runtime's own stop mechanism).
    #[must_use]
    pub fn failed(&self) -> bool {
        if !self.signals.is_empty() {
            return true;
        }
        match &self.result.outcome {
            RunOutcome::Completed => false,
            RunOutcome::Crashed(CrashKind::Breakpoint) => false,
            RunOutcome::Crashed(_) => true,
        }
    }

    /// Whether the run was cut short by the malloc breakpoint.
    #[must_use]
    pub fn hit_breakpoint(&self) -> bool {
        matches!(
            self.result.outcome,
            RunOutcome::Crashed(CrashKind::Breakpoint)
        )
    }
}

/// A reusable execution engine: holds a recycled [`Arena`](xt_arena::Arena)
/// across runs, so a long-lived worker (a [`pool`](crate::pool) replica, a
/// fleet-simulator client) builds translation structures once and *resets*
/// them between inputs instead of rebuilding them — the paper's replicas
/// are persistent processes, and persistent processes do not pay process
/// startup per request.
///
/// One-shot callers use [`execute`]; repeated callers keep one
/// `ReusableStack` and call [`execute_reusable`] (or drive
/// [`ReusableStack::start`] / [`ActiveRun::finish`] directly when they
/// need to observe the run's output before the heap image is captured).
#[derive(Debug, Default)]
pub struct ReusableStack {
    arena: Option<xt_arena::Arena>,
    /// The previous run's heap image, kept as the base for incremental
    /// capture. [`Arena::reset`](xt_arena::Arena::reset) clears all dirty
    /// state and remapping marks every fresh page, so diffing against the
    /// base stays byte-identical to a full capture even across inputs —
    /// the reused-vs-fresh determinism tests pin this.
    base_image: Option<HeapImage>,
}

impl ReusableStack {
    /// Creates an engine with no recycled arena yet (the first run builds
    /// one).
    #[must_use]
    pub fn new() -> Self {
        ReusableStack::default()
    }

    /// Builds the allocator stack for one run — fault injector → correcting
    /// allocator → DieFast → DieHard → arena — over the recycled address
    /// space, and returns the run ready to execute.
    pub fn start(&mut self, config: RunConfig) -> ActiveRun<'_> {
        let mut diefast_config = config.diefast;
        diefast_config.heap.seed = config.heap_seed;
        let arena = self.arena.take().unwrap_or_default();
        let mut diefast = DieFastHeap::with_arena(diefast_config, arena);
        diefast.set_breakpoint(config.breakpoint);
        diefast.set_halt_on_signal(config.halt_on_signal);
        let correcting = CorrectingHeap::new(diefast, config.patches);
        ActiveRun {
            home: self,
            stack: FaultyHeap::new(correcting, config.fault),
            result: None,
        }
    }
}

/// One run in flight over a [`ReusableStack`]. After [`ActiveRun::run`]
/// the heap is still standing: the replicated mode's streaming voter reads
/// the output here, *before* [`ActiveRun::finish`] captures the heap image
/// — so a vote verdict never waits on image capture.
#[derive(Debug)]
pub struct ActiveRun<'a> {
    home: &'a mut ReusableStack,
    stack: FaultyHeap<CorrectingHeap<DieFastHeap>>,
    result: Option<RunResult>,
}

impl ActiveRun<'_> {
    /// Executes the workload to completion (or crash) and returns its
    /// result. The heap stays standing for [`ActiveRun::finish`].
    pub fn run(&mut self, workload: &dyn Workload, input: &WorkloadInput) -> &RunResult {
        let result = workload.run(&mut self.stack, input);
        self.result.insert(result)
    }

    /// Captures the heap image, tears the stack down, and recycles the
    /// arena back into the owning [`ReusableStack`].
    ///
    /// # Panics
    ///
    /// Panics if called before [`ActiveRun::run`].
    #[must_use]
    pub fn finish(self) -> RunRecord {
        let result = self.result.expect("finish() requires a completed run()");
        let injected = self.stack.events().to_vec();
        let diefast = self.stack.into_inner().into_inner();
        let image = match self.home.base_image.take() {
            Some(base) => HeapImage::capture_incremental(&base, &diefast),
            None => HeapImage::capture(&diefast),
        };
        // Cheap: slot data is `Arc`-shared, so the retained base costs one
        // refcount per slot, not a byte copy.
        self.home.base_image = Some(image.clone());
        let clock = diefast.inner().clock();
        let history = diefast.inner().history().cloned();
        let mut diefast = diefast;
        let signals = diefast.take_signals();
        self.home.arena = Some(diefast.into_inner().into_arena());
        RunRecord {
            result,
            signals,
            image,
            history,
            injected,
            clock,
        }
    }
}

/// Executes one run of `workload` over a freshly built allocator stack:
/// fault injector → correcting allocator → DieFast → DieHard → arena.
#[must_use]
pub fn execute(workload: &dyn Workload, input: &WorkloadInput, config: RunConfig) -> RunRecord {
    execute_reusable(workload, input, config, &mut ReusableStack::new())
}

/// Executes one run over `stack`'s recycled address space. Behaviour is
/// byte-for-byte identical to [`execute`] with the same `config` (the
/// determinism tests pin this); only the allocation cost differs.
#[must_use]
pub fn execute_reusable(
    workload: &dyn Workload,
    input: &WorkloadInput,
    config: RunConfig,
    stack: &mut ReusableStack,
) -> RunRecord {
    let mut active = stack.start(config);
    active.run(workload, input);
    active.finish()
}

/// Reproduces the paper's fault-selection methodology (§7.2): "we run the
/// injector using a random seed until it triggers an error or divergent
/// output. We next use this seed to deterministically trigger a single
/// error in Exterminator."
///
/// Candidate triggers are sampled from `[trigger_lo, trigger_hi)`; each is
/// probed over `probe_runs` differently-randomized heaps. The first fault
/// that manifests (signal or crash) in some probe run is returned.
/// Injected faults that stay benign — e.g. an overflow absorbed by size-class
/// rounding — are discarded, exactly as the paper discards injector seeds
/// that trigger no error.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn find_manifesting_fault(
    workload: &dyn Workload,
    input: &WorkloadInput,
    kind: xt_faults::FaultKind,
    trigger_lo: u64,
    trigger_hi: u64,
    attempts: usize,
    probe_runs: usize,
    selection_seed: u64,
) -> Option<FaultSpec> {
    let mut rng = xt_arena::Rng::new(selection_seed ^ 0xF1AD_5EED);
    for attempt in 0..attempts {
        let spec = FaultSpec {
            kind,
            trigger: AllocTime::from_raw(trigger_lo + rng.below(trigger_hi - trigger_lo)),
        };
        for probe in 0..probe_runs {
            let mut config =
                RunConfig::with_seed(selection_seed ^ (attempt as u64 * 131 + probe as u64 + 1));
            config.fault = Some(spec);
            config.halt_on_signal = true;
            let rec = execute(workload, input, config);
            if rec.failed() {
                return Some(spec);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_alloc::AllocTime;
    use xt_faults::FaultKind;
    use xt_workloads::EspressoLike;

    #[test]
    fn clean_run_is_not_a_failure() {
        let rec = execute(
            &EspressoLike::new(),
            &WorkloadInput::with_seed(1),
            RunConfig::with_seed(7),
        );
        assert!(rec.result.completed());
        assert!(!rec.failed());
        assert!(rec.signals.is_empty());
        assert!(rec.clock.raw() > 100);
        assert_eq!(rec.image.clock, rec.clock);
    }

    #[test]
    fn breakpoint_stops_run_without_failing_it() {
        let mut config = RunConfig::with_seed(8);
        config.breakpoint = Some(AllocTime::from_raw(50));
        let rec = execute(&EspressoLike::new(), &WorkloadInput::with_seed(1), config);
        assert!(rec.hit_breakpoint());
        assert!(!rec.failed());
        assert_eq!(rec.clock, AllocTime::from_raw(50));
    }

    #[test]
    fn injected_overflow_eventually_signals() {
        // Select a manifesting fault (overflows absorbed by size-class
        // rounding are benign, §7.2 methodology), then check that a good
        // share of randomized runs observe it.
        let input = WorkloadInput::with_seed(3).intensity(3);
        let fault = find_manifesting_fault(
            &EspressoLike::new(),
            &input,
            FaultKind::BufferOverflow {
                delta: 20,
                fill: 0xEE,
            },
            100,
            300,
            20,
            4,
            99,
        )
        .expect("no manifesting fault");
        let mut failures = 0;
        for seed in 0..8 {
            let mut config = RunConfig::with_seed(1000 + seed);
            config.fault = Some(fault);
            config.halt_on_signal = true;
            let rec = execute(&EspressoLike::new(), &input, config);
            if rec.failed() {
                failures += 1;
                assert!(
                    !rec.signals.is_empty() || !rec.result.completed(),
                    "failure without evidence"
                );
            }
        }
        assert!(failures >= 3, "only {failures}/8 runs observed the fault");
    }

    /// The no-leak pin for pooled reuse: a run over a recycled arena (with
    /// arbitrary prior state) is observationally identical to the same run
    /// over a fresh stack — result, signals, image, history, clock.
    #[test]
    fn reused_stack_runs_are_identical_to_fresh_runs() {
        let input = WorkloadInput::with_seed(11).intensity(2);
        let config = || {
            let mut c = RunConfig::with_seed(31337);
            c.diefast = DieFastConfig::cumulative_with_seed(31337);
            c.fault = Some(FaultSpec {
                kind: FaultKind::BufferOverflow {
                    delta: 20,
                    fill: 0xEE,
                },
                trigger: AllocTime::from_raw(140),
            });
            c
        };
        let fresh = execute(&EspressoLike::new(), &input, config());
        let mut stack = ReusableStack::new();
        // Pollute the stack with two unrelated prior runs (different seed,
        // different workload input, no fault) before the run under test.
        for prior in 0..2 {
            let _ = execute_reusable(
                &EspressoLike::new(),
                &WorkloadInput::with_seed(90 + prior),
                RunConfig::with_seed(777 + prior),
                &mut stack,
            );
        }
        let reused = execute_reusable(&EspressoLike::new(), &input, config(), &mut stack);
        assert_eq!(fresh, reused, "recycled arena leaked state into the run");
    }

    #[test]
    fn history_is_captured_when_tracked() {
        let mut config = RunConfig::with_seed(9);
        config.diefast = DieFastConfig::cumulative_with_seed(9);
        let rec = execute(&EspressoLike::new(), &WorkloadInput::with_seed(2), config);
        let history = rec.history.expect("history enabled");
        assert_eq!(history.len() as u64, rec.clock.raw());
    }
}
