//! Iterative mode (§3.4): replay-based isolation and repair.
//!
//! "To find a single bug, Exterminator is initially invoked via a
//! command-line option that directs it to stop as soon as it detects an
//! error. Exterminator then re-executes the program in 'replay' mode over
//! the same input (but with a new random seed). ... Exterminator reads
//! the allocation time from the initial heap image to abort execution at
//! that point; we call this a *malloc breakpoint*."
//!
//! [`IterativeMode::repair`] drives the full loop: discover → replay to
//! collect `k` independently randomized images at the same logical time →
//! isolate → patch → verify, repeating while errors remain (each round
//! isolates one error) up to a configured bound.

use xt_alloc::AllocTime;
use xt_diefast::DieFastConfig;
use xt_faults::FaultSpec;
use xt_image::HeapImage;
use xt_isolate::iterative::{isolate_with, IsolateOptions};
use xt_isolate::IsolationReport;
use xt_patch::PatchTable;
use xt_workloads::{CrashKind, RunOutcome, Workload, WorkloadInput};

use crate::runner::{execute, RunConfig};

/// Configuration for iterative repair.
#[derive(Clone, Debug)]
pub struct IterativeConfig {
    /// Initial images per round, including the discovery run's (the
    /// paper's espresso experiments needed 3 in every case, §7.2).
    pub images: usize,
    /// Upper bound on images per round: when isolation comes up empty the
    /// round keeps generating replays ("this process can be repeated
    /// multiple times to generate independent heap images", §3.4) until
    /// this many have been collected.
    pub max_images: usize,
    /// Maximum discover–isolate–patch rounds before giving up.
    pub max_rounds: usize,
    /// Base seed; every run derives a fresh heap seed from it.
    pub base_seed: u64,
    /// DieFast configuration (iterative mode always canaries: `p = 1`).
    pub diefast: DieFastConfig,
    /// Isolation tuning.
    pub options: IsolateOptions,
    /// Differently-randomized discovery attempts before concluding that no
    /// error manifests. Detection is probabilistic (Theorem 2), so one
    /// clean run is weak evidence; the paper likewise re-runs its injector
    /// "until it triggers an error or divergent output" (§7.2).
    pub discovery_attempts: usize,
}

impl Default for IterativeConfig {
    fn default() -> Self {
        IterativeConfig {
            images: 3,
            max_images: 12,
            max_rounds: 8,
            base_seed: 0x17E2_A71F,
            diefast: DieFastConfig::with_seed(0),
            options: IsolateOptions::default(),
            discovery_attempts: 6,
        }
    }
}

/// How a failing discovery run manifested.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// DieFast signalled canary corruption.
    Signal,
    /// The program crashed with a simulated segfault.
    SegFault,
    /// The program aborted on its own invariant check (e.g. after reading
    /// a canary through a dangling pointer — §7.2's unisolatable case).
    SelfAbort,
    /// The allocator gave out (treated as failure).
    HeapExhausted,
}

/// One discover–isolate–patch round.
#[derive(Clone, Debug)]
pub struct RoundReport {
    /// The malloc breakpoint (detection time) used for replays.
    pub breakpoint: AllocTime,
    /// How the discovery run failed.
    pub failure: FailureKind,
    /// What isolation concluded.
    pub report: IsolationReport,
    /// Patches added this round.
    pub new_patches: PatchTable,
    /// Images captured this round.
    pub images: usize,
}

/// The outcome of a full repair session.
#[derive(Clone, Debug)]
pub struct IterativeOutcome {
    /// Merged patches from all rounds.
    pub patches: PatchTable,
    /// Per-round detail.
    pub rounds: Vec<RoundReport>,
    /// Whether the final verification run was clean.
    pub fixed: bool,
    /// Total heap images captured across all rounds.
    pub images_used: usize,
}

/// The iterative-mode driver.
#[derive(Clone, Debug)]
pub struct IterativeMode {
    config: IterativeConfig,
    seed_counter: u64,
}

impl IterativeMode {
    /// Creates a driver.
    #[must_use]
    pub fn new(config: IterativeConfig) -> Self {
        IterativeMode {
            config,
            seed_counter: 0,
        }
    }

    fn next_seed(&mut self) -> u64 {
        self.seed_counter += 1;
        self.config
            .base_seed
            .wrapping_add(self.seed_counter.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    fn run_config(&mut self, patches: PatchTable, fault: Option<FaultSpec>) -> RunConfig {
        RunConfig {
            heap_seed: self.next_seed(),
            diefast: self.config.diefast.clone(),
            patches,
            fault,
            breakpoint: None,
            halt_on_signal: false,
        }
    }

    /// Runs the full discover–isolate–patch–verify loop.
    pub fn repair(
        &mut self,
        workload: &dyn Workload,
        input: &WorkloadInput,
        fault: Option<FaultSpec>,
    ) -> IterativeOutcome {
        let mut patches = PatchTable::new();
        let mut rounds = Vec::new();
        let mut images_used = 0;
        let mut empty_rounds_in_a_row = 0;

        for _ in 0..self.config.max_rounds {
            // Discovery: re-run under fresh randomization until an error is
            // detected; several clean attempts mean the program is (now)
            // clean with high probability (Theorem 2).
            let mut detected = None;
            for _ in 0..self.config.discovery_attempts.max(1) {
                let mut discover = self.run_config(patches.clone(), fault);
                discover.halt_on_signal = true;
                let rec = execute(workload, input, discover);
                if rec.failed() {
                    detected = Some(rec);
                    break;
                }
            }
            let Some(rec) = detected else {
                // Clean under current patches: repaired.
                return IterativeOutcome {
                    patches,
                    rounds,
                    fixed: true,
                    images_used,
                };
            };
            let failure = match (&rec.result.outcome, rec.signals.is_empty()) {
                (_, false) => FailureKind::Signal,
                (RunOutcome::Crashed(CrashKind::SegFault(_)), _) => FailureKind::SegFault,
                (RunOutcome::Crashed(CrashKind::SelfAbort(_)), _) => FailureKind::SelfAbort,
                _ => FailureKind::HeapExhausted,
            };
            let breakpoint = rec.clock;
            let mut images: Vec<HeapImage> = vec![rec.image];
            images_used += 1;

            // Replays: same input, new seeds, stop at the breakpoint,
            // ignore signals raised before it. If isolation comes up
            // empty, escalate with additional independent images — each
            // extra image cuts the miss probability per Theorem 2.
            let mut target = self.config.images.max(2);
            let (report, new_patches) = loop {
                while images.len() < target {
                    let mut replay = self.run_config(patches.clone(), fault);
                    replay.breakpoint = Some(breakpoint);
                    let rec = execute(workload, input, replay);
                    images_used += 1;
                    images.push(rec.image);
                }
                let report = isolate_with(&images, self.config.options).unwrap_or_default();
                let new_patches = report.to_patches();
                if !new_patches.is_empty() || target >= self.config.max_images {
                    break (report, new_patches);
                }
                target = (target + 2).min(self.config.max_images);
            };
            let made_progress = !new_patches.is_empty();
            // §6.2 iteration: deferrals compound across rounds (the
            // recorded free time shifts once a deferral is applied), pads
            // merge by max.
            patches.escalate(&new_patches);
            rounds.push(RoundReport {
                breakpoint,
                failure,
                report,
                new_patches,
                images: images.len(),
            });
            if made_progress {
                empty_rounds_in_a_row = 0;
            } else {
                empty_rounds_in_a_row += 1;
                // Two consecutive rounds with nothing isolatable (e.g. a
                // read-only dangling pointer in iterative mode, §7.2):
                // give up rather than loop. A single empty round can just
                // be an unluckily manifesting failure mode.
                if empty_rounds_in_a_row >= 2 {
                    return IterativeOutcome {
                        patches,
                        rounds,
                        fixed: false,
                        images_used,
                    };
                }
            }
        }

        // Final verification.
        let verify = self.run_config(patches.clone(), fault);
        let rec = execute(workload, input, verify);
        IterativeOutcome {
            fixed: !rec.failed(),
            patches,
            rounds,
            images_used,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_alloc::SitePair;
    use xt_faults::{FaultKind, INJECTED_FREE_SITE};
    use xt_workloads::EspressoLike;

    /// Selects an overflow fault that actually manifests on this input —
    /// the paper's own methodology (§7.2): injector seeds whose fault is
    /// absorbed by size-class rounding trigger no error and are discarded.
    fn manifesting_overflow(input: &WorkloadInput, delta: u32, seed: u64) -> FaultSpec {
        crate::runner::find_manifesting_fault(
            &EspressoLike::new(),
            input,
            FaultKind::BufferOverflow { delta, fill: 0xEE },
            100,
            300,
            20,
            4,
            seed,
        )
        .expect("no manifesting overflow found")
    }

    #[test]
    fn clean_program_needs_no_rounds() {
        let mut mode = IterativeMode::new(IterativeConfig::default());
        let outcome = mode.repair(&EspressoLike::new(), &WorkloadInput::with_seed(5), None);
        assert!(outcome.fixed);
        assert!(outcome.rounds.is_empty());
        assert!(outcome.patches.is_empty());
    }

    #[test]
    fn injected_overflow_is_repaired() {
        let input = WorkloadInput::with_seed(9).intensity(3);
        let fault = manifesting_overflow(&input, 20, 1);
        let mut mode = IterativeMode::new(IterativeConfig::default());
        let outcome = mode.repair(&EspressoLike::new(), &input, Some(fault));
        assert!(
            outcome.fixed,
            "not repaired in {} rounds",
            outcome.rounds.len()
        );
        assert!(
            !outcome.rounds.is_empty(),
            "a manifesting fault must require at least one round"
        );
        // The pad must be large enough that requested + pad covers the
        // corruption extent observed by isolation.
        let max_pad = outcome.patches.pads().map(|(_, p)| p).max().unwrap_or(0);
        assert!(max_pad >= 4, "pad {max_pad} too small to contain anything");
    }

    #[test]
    fn patched_rerun_is_clean_with_fresh_seeds() {
        let input = WorkloadInput::with_seed(13).intensity(3);
        let fault = manifesting_overflow(&input, 36, 2);
        let mut mode = IterativeMode::new(IterativeConfig::default());
        let outcome = mode.repair(&EspressoLike::new(), &input, Some(fault));
        assert!(outcome.fixed);
        // Re-verify on 3 fresh seeds with the produced patches only.
        for seed in 900..903 {
            let mut config = RunConfig::with_seed(seed);
            config.patches = outcome.patches.clone();
            config.fault = Some(fault);
            let rec = execute(&EspressoLike::new(), &input, config);
            assert!(!rec.failed(), "patched run failed under seed {seed}");
        }
    }

    #[test]
    fn injected_dangling_write_produces_deferral_patch() {
        // A dangling free with a short lag: espresso's unchecked `mark`
        // path overwrites the canary — the §4.2 isolatable case. The paper
        // itself isolated only 4 of 10 injected dangling faults in
        // iterative mode (the rest abort on a canary read or cascade), so
        // scan triggers until one isolates, like the paper scans seeds.
        let input = WorkloadInput::with_seed(21).intensity(3);
        let mut repaired = false;
        for i in 0..25u64 {
            let fault = FaultSpec {
                kind: FaultKind::DanglingFree { lag: 10 },
                trigger: AllocTime::from_raw(120 + i * 15),
            };
            let mut mode = IterativeMode::new(IterativeConfig::default());
            let outcome = mode.repair(&EspressoLike::new(), &input, Some(fault));
            let deferral: Vec<(SitePair, u64)> = outcome.patches.deferrals().collect();
            if outcome.fixed && !deferral.is_empty() {
                assert!(
                    deferral.iter().all(|(p, _)| p.free == INJECTED_FREE_SITE),
                    "deferral keyed to the injected free site"
                );
                repaired = true;
                break;
            }
        }
        assert!(
            repaired,
            "no dangling fault was isolated across 25 triggers"
        );
    }

    #[test]
    fn unisolatable_failure_reports_not_fixed() {
        // Trigger a dangling fault whose only effect is a read-crash in
        // most layouts: if isolation finds nothing, the driver must stop
        // with fixed = false instead of looping. We force the situation by
        // giving the isolator impossible requirements.
        let fault = FaultSpec {
            kind: FaultKind::DanglingFree { lag: 3 },
            trigger: AllocTime::from_raw(100),
        };
        let mut config = IterativeConfig {
            images: 2,
            max_rounds: 2,
            ..IterativeConfig::default()
        };
        config.options.min_confirmations = usize::MAX;
        let mut mode = IterativeMode::new(config);
        let outcome = mode.repair(
            &EspressoLike::new(),
            &WorkloadInput::with_seed(33).intensity(3),
            Some(fault),
        );
        // With min_confirmations impossible, overflow reports vanish; only
        // dangling overwrites could patch. Either way the driver
        // terminates within max_rounds.
        assert!(outcome.rounds.len() <= 2);
    }
}
