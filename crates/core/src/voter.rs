//! The replicated mode's output voter (§3.1, §3.4).
//!
//! "A voter intercepts and compares outputs across the replicas, and only
//! actually generates output agreed on by a plurality of the replicas."

use std::collections::HashMap;

/// The result of voting over replica outputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VoteResult {
    /// The plurality output.
    pub winner: Vec<u8>,
    /// Indices of replicas that produced the winner.
    pub agreeing: Vec<usize>,
    /// Indices of replicas that diverged.
    pub dissenting: Vec<usize>,
}

impl VoteResult {
    /// `true` if every replica agreed.
    #[must_use]
    pub fn unanimous(&self) -> bool {
        self.dissenting.is_empty()
    }

    /// `true` if a strict majority agreed on the winner.
    #[must_use]
    pub fn majority(&self) -> bool {
        2 * self.agreeing.len() > self.agreeing.len() + self.dissenting.len()
    }
}

/// Computes the plurality output across replicas. Ties are broken toward
/// the lowest replica index, deterministically.
///
/// # Panics
///
/// Panics if `outputs` is empty — a voter needs at least one replica.
#[must_use]
pub fn vote(outputs: &[Vec<u8>]) -> VoteResult {
    assert!(!outputs.is_empty(), "voting requires at least one replica");
    let mut counts: HashMap<&[u8], (usize, usize)> = HashMap::new();
    for (i, out) in outputs.iter().enumerate() {
        let entry = counts.entry(out.as_slice()).or_insert((0, i));
        entry.0 += 1;
    }
    let (&winner, _) = counts
        .iter()
        .max_by(|(_, (ca, ia)), (_, (cb, ib))| ca.cmp(cb).then(ib.cmp(ia)))
        .expect("non-empty outputs");
    let mut agreeing = Vec::new();
    let mut dissenting = Vec::new();
    for (i, out) in outputs.iter().enumerate() {
        if out.as_slice() == winner {
            agreeing.push(i);
        } else {
            dissenting.push(i);
        }
    }
    VoteResult {
        winner: winner.to_vec(),
        agreeing,
        dissenting,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous_vote() {
        let outputs = vec![b"abc".to_vec(), b"abc".to_vec(), b"abc".to_vec()];
        let v = vote(&outputs);
        assert!(v.unanimous());
        assert!(v.majority());
        assert_eq!(v.winner, b"abc");
        assert_eq!(v.agreeing, vec![0, 1, 2]);
    }

    #[test]
    fn plurality_beats_dissent() {
        let outputs = vec![b"good".to_vec(), b"BAD!".to_vec(), b"good".to_vec()];
        let v = vote(&outputs);
        assert!(!v.unanimous());
        assert!(v.majority());
        assert_eq!(v.winner, b"good");
        assert_eq!(v.dissenting, vec![1]);
    }

    #[test]
    fn tie_breaks_to_lowest_index_deterministically() {
        let outputs = vec![b"a".to_vec(), b"b".to_vec()];
        let v = vote(&outputs);
        assert_eq!(v.winner, b"a");
        assert!(!v.majority());
        // Deterministic under repetition.
        for _ in 0..10 {
            assert_eq!(vote(&outputs).winner, b"a");
        }
    }

    #[test]
    fn single_replica_wins_trivially() {
        let v = vote(&[b"solo".to_vec()]);
        assert!(v.unanimous());
        assert_eq!(v.winner, b"solo");
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_vote_panics() {
        let _ = vote(&[]);
    }
}
