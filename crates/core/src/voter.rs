//! The replicated mode's output voter (§3.1, §3.4).
//!
//! "A voter intercepts and compares outputs across the replicas, and only
//! actually generates output agreed on by a plurality of the replicas."
//!
//! Two voting surfaces:
//!
//! * [`vote`] — the batch voter: all outputs in hand, one plurality pass.
//! * [`StreamingVoter`] — the incremental voter the
//!   [replica pool](crate::pool) uses: replica output arrives in chunks and
//!   is folded into a per-replica 128-bit digest; the moment a *quorum* of
//!   finished replicas share one digest the voter declares a
//!   [`StreamVerdict`], so the pool can release the agreed output while
//!   stragglers and crashed replicas are still finishing (their heap
//!   images are still wanted for isolation). Once every replica finishes,
//!   [`StreamingVoter::final_vote`] produces the same partition [`vote`]
//!   would — scheduling can make the verdict *earlier*, never different.

use std::collections::HashMap;

/// The result of voting over replica outputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VoteResult {
    /// The plurality output.
    pub winner: Vec<u8>,
    /// Indices of replicas that produced the winner.
    pub agreeing: Vec<usize>,
    /// Indices of replicas that diverged.
    pub dissenting: Vec<usize>,
}

impl VoteResult {
    /// `true` if every replica agreed.
    #[must_use]
    pub fn unanimous(&self) -> bool {
        self.dissenting.is_empty()
    }

    /// `true` if a strict majority agreed on the winner.
    #[must_use]
    pub fn majority(&self) -> bool {
        2 * self.agreeing.len() > self.agreeing.len() + self.dissenting.len()
    }
}

/// Computes the plurality output across replicas. Ties are broken toward
/// the lowest replica index, deterministically.
///
/// # Panics
///
/// Panics if `outputs` is empty — a voter needs at least one replica.
#[must_use]
pub fn vote(outputs: &[Vec<u8>]) -> VoteResult {
    assert!(!outputs.is_empty(), "voting requires at least one replica");
    let mut counts: HashMap<&[u8], (usize, usize)> = HashMap::new();
    for (i, out) in outputs.iter().enumerate() {
        let entry = counts.entry(out.as_slice()).or_insert((0, i));
        entry.0 += 1;
    }
    let (&winner, _) = counts
        .iter()
        .max_by(|(_, (ca, ia)), (_, (cb, ib))| ca.cmp(cb).then(ib.cmp(ia)))
        .expect("non-empty outputs");
    let mut agreeing = Vec::new();
    let mut dissenting = Vec::new();
    for (i, out) in outputs.iter().enumerate() {
        if out.as_slice() == winner {
            agreeing.push(i);
        } else {
            dissenting.push(i);
        }
    }
    VoteResult {
        winner: winner.to_vec(),
        agreeing,
        dissenting,
    }
}

/// FNV-1a 128 offset basis: the empty-output digest.
const DIGEST_BASIS: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;

/// FNV-1a 128 prime.
const DIGEST_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

/// Folds one output chunk into a running 128-bit FNV-1a digest. Start from
/// [`empty_digest`]; chunk boundaries do not affect the result.
#[must_use]
pub fn digest_chunk(state: u128, chunk: &[u8]) -> u128 {
    let mut h = state;
    for &b in chunk {
        h ^= u128::from(b);
        h = h.wrapping_mul(DIGEST_PRIME);
    }
    h
}

/// The digest of zero output bytes.
#[must_use]
pub fn empty_digest() -> u128 {
    DIGEST_BASIS
}

/// Digests a complete output in one call.
#[must_use]
pub fn output_digest(output: &[u8]) -> u128 {
    digest_chunk(DIGEST_BASIS, output)
}

/// The streaming voter's early verdict: a quorum of finished replicas
/// agree on one full-output digest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamVerdict {
    /// The agreed digest.
    pub digest: u128,
    /// Replicas (by index) that had finished with this digest when the
    /// quorum formed.
    pub agreeing: Vec<usize>,
    /// Replicas not yet finished at that moment — the stragglers the
    /// verdict did not wait for.
    pub outstanding: usize,
}

/// Incremental plurality voting over replica output digests.
#[derive(Clone, Debug)]
pub struct StreamingVoter {
    quorum: usize,
    /// Running digest per replica.
    states: Vec<u128>,
    /// Finalized digest per replica (set by `finish_replica`).
    finished: Vec<Option<u128>>,
    verdict: Option<StreamVerdict>,
}

impl StreamingVoter {
    /// A voter over `replicas` replicas with a strict-majority quorum.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    #[must_use]
    pub fn new(replicas: usize) -> Self {
        StreamingVoter::with_quorum(replicas, replicas / 2 + 1)
    }

    /// A voter with an explicit quorum, clamped to
    /// `(replicas/2 + 1)..=replicas`. The strict-majority floor is what
    /// guarantees the early verdict can never name a different digest
    /// than [`StreamingVoter::final_vote`]'s plurality winner: two
    /// digests cannot both reach a majority, so the quorum digest is the
    /// final winner no matter how stragglers finish. A sub-majority
    /// quorum would let one fast corrupted replica publish its output —
    /// exactly what the voter exists to suppress — so it is not offered.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    #[must_use]
    pub fn with_quorum(replicas: usize, quorum: usize) -> Self {
        assert!(replicas > 0, "voting requires at least one replica");
        StreamingVoter {
            quorum: quorum.clamp(replicas / 2 + 1, replicas),
            states: vec![DIGEST_BASIS; replicas],
            finished: vec![None; replicas],
            verdict: None,
        }
    }

    /// Number of replicas under vote.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.states.len()
    }

    /// Folds an output chunk from `replica` into its running digest.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range or already finished.
    pub fn push_chunk(&mut self, replica: usize, chunk: &[u8]) {
        assert!(
            self.finished[replica].is_none(),
            "replica {replica} already finished"
        );
        self.states[replica] = digest_chunk(self.states[replica], chunk);
    }

    /// Marks `replica`'s output complete, finalizing its digest. Returns
    /// the verdict if this completion (first) forms a quorum.
    ///
    /// # Panics
    ///
    /// Panics if `replica` is out of range or already finished.
    pub fn finish_replica(&mut self, replica: usize) -> Option<&StreamVerdict> {
        assert!(
            self.finished[replica].is_none(),
            "replica {replica} finished twice"
        );
        let digest = self.states[replica];
        self.finished[replica] = Some(digest);
        if self.verdict.is_none() {
            let agreeing: Vec<usize> = self
                .finished
                .iter()
                .enumerate()
                .filter_map(|(i, d)| (*d == Some(digest)).then_some(i))
                .collect();
            if agreeing.len() >= self.quorum {
                self.verdict = Some(StreamVerdict {
                    digest,
                    agreeing,
                    outstanding: self.finished.iter().filter(|d| d.is_none()).count(),
                });
            }
        }
        self.verdict.as_ref()
    }

    /// The early verdict, if a quorum has formed.
    #[must_use]
    pub fn verdict(&self) -> Option<&StreamVerdict> {
        self.verdict.as_ref()
    }

    /// Finalized digest of `replica`, if it has finished.
    #[must_use]
    pub fn digest_of(&self, replica: usize) -> Option<u128> {
        self.finished[replica]
    }

    /// Count of finished replicas.
    #[must_use]
    pub fn finished_count(&self) -> usize {
        self.finished.iter().filter(|d| d.is_some()).count()
    }

    /// The full plurality partition over digests, with [`vote`]'s exact
    /// tie-break (lowest first-occurrence index wins). Winner bytes are
    /// not reconstructed here — the caller holds the outputs and indexes
    /// them with `agreeing[0]`.
    ///
    /// # Panics
    ///
    /// Panics unless every replica has finished.
    #[must_use]
    pub fn final_vote(&self) -> DigestVote {
        let digests: Vec<u128> = self
            .finished
            .iter()
            .map(|d| d.expect("final_vote requires all replicas finished"))
            .collect();
        let mut counts: HashMap<u128, (usize, usize)> = HashMap::new();
        for (i, &d) in digests.iter().enumerate() {
            counts.entry(d).or_insert((0, i)).0 += 1;
        }
        let (&winner, _) = counts
            // xt-analyze: allow(hash-iter) -- max_by comparator is a total order over (count, first-index), so the winner is unique regardless of iteration order
            .iter()
            .max_by(|(_, (ca, ia)), (_, (cb, ib))| ca.cmp(cb).then(ib.cmp(ia)))
            .expect("non-empty replica set");
        let mut agreeing = Vec::new();
        let mut dissenting = Vec::new();
        for (i, &d) in digests.iter().enumerate() {
            if d == winner {
                agreeing.push(i);
            } else {
                dissenting.push(i);
            }
        }
        DigestVote {
            winner,
            agreeing,
            dissenting,
        }
    }
}

/// [`StreamingVoter::final_vote`]'s result: [`VoteResult`] over digests
/// instead of output bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DigestVote {
    /// The plurality digest.
    pub winner: u128,
    /// Indices of replicas that produced the winner.
    pub agreeing: Vec<usize>,
    /// Indices of replicas that diverged.
    pub dissenting: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous_vote() {
        let outputs = vec![b"abc".to_vec(), b"abc".to_vec(), b"abc".to_vec()];
        let v = vote(&outputs);
        assert!(v.unanimous());
        assert!(v.majority());
        assert_eq!(v.winner, b"abc");
        assert_eq!(v.agreeing, vec![0, 1, 2]);
    }

    #[test]
    fn plurality_beats_dissent() {
        let outputs = vec![b"good".to_vec(), b"BAD!".to_vec(), b"good".to_vec()];
        let v = vote(&outputs);
        assert!(!v.unanimous());
        assert!(v.majority());
        assert_eq!(v.winner, b"good");
        assert_eq!(v.dissenting, vec![1]);
    }

    #[test]
    fn tie_breaks_to_lowest_index_deterministically() {
        let outputs = vec![b"a".to_vec(), b"b".to_vec()];
        let v = vote(&outputs);
        assert_eq!(v.winner, b"a");
        assert!(!v.majority());
        // Deterministic under repetition.
        for _ in 0..10 {
            assert_eq!(vote(&outputs).winner, b"a");
        }
    }

    #[test]
    fn single_replica_wins_trivially() {
        let v = vote(&[b"solo".to_vec()]);
        assert!(v.unanimous());
        assert_eq!(v.winner, b"solo");
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_vote_panics() {
        let _ = vote(&[]);
    }

    #[test]
    fn digest_is_chunking_invariant() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let whole = output_digest(data);
        for chunk in [1usize, 3, 7, 16, data.len()] {
            let mut state = empty_digest();
            for piece in data.chunks(chunk) {
                state = digest_chunk(state, piece);
            }
            assert_eq!(state, whole, "chunk size {chunk} changed the digest");
        }
        assert_ne!(whole, output_digest(b"different"));
        assert_eq!(output_digest(b""), empty_digest());
    }

    #[test]
    fn quorum_verdict_fires_before_stragglers_finish() {
        let mut voter = StreamingVoter::new(5);
        voter.push_chunk(0, b"out");
        voter.push_chunk(1, b"o");
        voter.push_chunk(1, b"ut");
        voter.push_chunk(3, b"out");
        assert!(voter.finish_replica(0).is_none(), "1 of 5 is no quorum");
        assert!(voter.finish_replica(1).is_none(), "2 of 5 is no quorum");
        let verdict = voter.finish_replica(3).expect("3 of 5 is a quorum").clone();
        assert_eq!(verdict.digest, output_digest(b"out"));
        assert_eq!(verdict.agreeing, vec![0, 1, 3]);
        assert_eq!(verdict.outstanding, 2, "two replicas still running");
        // Stragglers finishing later (even diverging) don't alter the
        // verdict...
        voter.push_chunk(2, b"BAD");
        voter.finish_replica(2);
        voter.push_chunk(4, b"out");
        voter.finish_replica(4);
        assert_eq!(voter.verdict().unwrap(), &verdict);
        // ...and the final partition matches the batch voter's.
        let full = voter.final_vote();
        let batch = vote(&[
            b"out".to_vec(),
            b"out".to_vec(),
            b"BAD".to_vec(),
            b"out".to_vec(),
            b"out".to_vec(),
        ]);
        assert_eq!(full.winner, output_digest(&batch.winner));
        assert_eq!(full.agreeing, batch.agreeing);
        assert_eq!(full.dissenting, batch.dissenting);
    }

    /// Any arrival order of the same outputs yields the identical final
    /// partition, and ties break exactly like the batch voter's.
    #[test]
    fn streaming_final_vote_matches_batch_voter_in_any_order() {
        let outputs: Vec<Vec<u8>> =
            vec![b"a".to_vec(), b"b".to_vec(), b"a".to_vec(), b"b".to_vec()];
        let batch = vote(&outputs);
        for order in [[0usize, 1, 2, 3], [3, 2, 1, 0], [1, 3, 0, 2]] {
            let mut voter = StreamingVoter::new(4);
            for &i in &order {
                voter.push_chunk(i, &outputs[i]);
                voter.finish_replica(i);
            }
            let full = voter.final_vote();
            assert_eq!(full.winner, output_digest(&batch.winner));
            assert_eq!(full.agreeing, batch.agreeing);
            assert_eq!(full.dissenting, batch.dissenting);
        }
    }

    /// A sub-majority quorum request is clamped up to a strict majority:
    /// a single fast, corrupted replica must never win the early verdict.
    #[test]
    fn quorum_is_clamped_to_strict_majority() {
        let mut voter = StreamingVoter::with_quorum(3, 1);
        voter.push_chunk(2, b"BAD");
        assert!(
            voter.finish_replica(2).is_none(),
            "one replica of three must not form a quorum"
        );
        voter.push_chunk(0, b"good");
        voter.finish_replica(0);
        voter.push_chunk(1, b"good");
        let verdict = voter.finish_replica(1).expect("majority formed").clone();
        assert_eq!(verdict.digest, output_digest(b"good"));
        assert_eq!(
            voter.final_vote().winner,
            verdict.digest,
            "early verdict and final plurality must agree"
        );
    }

    #[test]
    #[should_panic(expected = "all replicas finished")]
    fn final_vote_requires_all_finished() {
        let mut voter = StreamingVoter::new(2);
        voter.finish_replica(0);
        let _ = voter.final_vote();
    }
}
