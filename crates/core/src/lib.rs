//! Exterminator: a runtime system that automatically detects, isolates,
//! and **corrects** heap memory errors, with high probability (Novark,
//! Berger & Zorn, PLDI 2007).
//!
//! This crate is the top of the reproduction: it wires the substrates —
//! the randomized [DieHard](xt_diehard) heap, the [DieFast](xt_diefast)
//! probabilistic debugging allocator, [heap images](xt_image), the
//! [error isolator](xt_isolate), [runtime patches](xt_patch), and the
//! [correcting allocator](xt_correct) — into the paper's three modes of
//! operation (§3.4):
//!
//! * [`iterative`] — re-run the same input under fresh heap randomization,
//!   stopping each replay at the *malloc breakpoint* recorded when the
//!   error was first detected; diff the heap images; generate patches;
//!   repeat until the program runs clean.
//! * [`replicated`] — run several differently-seeded replicas of one
//!   execution simultaneously, vote on their outputs, and on any signal,
//!   crash, or divergence isolate errors from the replicas' images and
//!   hot-patch the survivors. `run_replicated` is the one-shot entry; the
//!   deployment shape — replicas that *stay up* across inputs, a streaming
//!   voter that answers before stragglers finish, and fleet patch epochs
//!   hot-reloaded between inputs — is the persistent [`pool`]; the
//!   *server* shape — many concurrent submitters over several pools,
//!   bounded queues with backpressure, per-job completion tickets, and one
//!   atomically fanned-out epoch version — is the [`frontend`].
//! * [`cumulative`] — for deployed, nondeterministic programs: reduce each
//!   run to per-site summary statistics and let a Bayesian classifier
//!   accumulate evidence across runs until the buggy sites cross the
//!   decision threshold.
//!
//! # Quick start
//!
//! ```
//! use exterminator::iterative::{IterativeConfig, IterativeMode};
//! use xt_alloc::AllocTime;
//! use xt_faults::{FaultKind, FaultSpec};
//! use xt_workloads::{EspressoLike, WorkloadInput};
//!
//! // A deterministic 20-byte overflow injected into an espresso-like run:
//! let fault = FaultSpec {
//!     kind: FaultKind::BufferOverflow { delta: 20, fill: 0xEE },
//!     trigger: AllocTime::from_raw(120),
//! };
//! let mut mode = IterativeMode::new(IterativeConfig::default());
//! let outcome = mode.repair(&EspressoLike::new(), &WorkloadInput::with_seed(42), Some(fault));
//! assert!(outcome.fixed, "the overflow should be isolated and patched");
//! assert!(!outcome.patches.is_empty());
//! ```

pub mod cumulative;
pub mod frontend;
pub mod iterative;
pub mod pool;
pub mod replicated;
pub mod runner;
pub mod voter;

pub use cumulative::{
    summarized_run, summarized_run_reusable, CumulativeMode, CumulativeModeConfig,
    CumulativeOutcome, SummarizedRun,
};
pub use frontend::{FrontendConfig, FrontendStats, JobTicket, PoolFrontend, RouteBy};
pub use iterative::{FailureKind, IterativeConfig, IterativeMode, IterativeOutcome, RoundReport};
pub use pool::{EarlyVerdict, PoolConfig, PoolOutcome, ReplicaPool, Straggler, VoteTiming};
pub use replicated::{run_replicated, ReplicaSummary, ReplicatedConfig, ReplicatedOutcome};
pub use runner::{
    execute, execute_reusable, find_manifesting_fault, ReusableStack, RunConfig, RunRecord,
};
pub use voter::{output_digest, vote, StreamVerdict, StreamingVoter, VoteResult};
