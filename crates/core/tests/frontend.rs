//! Determinism and concurrency pins for the pool front-end: a sharded,
//! concurrently-fed [`PoolFrontend`] is observably the *same computation*
//! as one [`ReplicaPool`] fed the same inputs serially — the queue layer,
//! the routing policy, and submitter interleaving can move wall-clock
//! time, never an outcome byte.

use std::sync::Mutex;

use exterminator::frontend::{FrontendConfig, PoolFrontend, RouteBy};
use exterminator::pool::{PoolConfig, ReplicaPool};
use exterminator::replicated::ReplicatedOutcome;
use xt_alloc::AllocTime;
use xt_faults::{FaultKind, FaultSpec};
use xt_patch::PatchTable;
use xt_workloads::{multi_client_sessions, EspressoLike, SquidLike, Workload, WorkloadInput};

/// A batch mixing clean inputs with a data-corrupting overflow, so the
/// pin covers voting, isolation, and patch generation — not just the
/// happy path. `auto_patch` stays off in these tests: with it on, patch
/// visibility is a function of completion order (true for a single pool
/// too), which is exactly the degree of freedom a byte-identity pin must
/// exclude.
fn mixed_batch() -> (Vec<WorkloadInput>, Option<FaultSpec>) {
    let inputs = (0..8).map(WorkloadInput::with_seed).collect();
    let fault = FaultSpec {
        kind: FaultKind::BufferOverflow {
            delta: 8,
            fill: 0x44,
        },
        trigger: AllocTime::from_raw(90),
    };
    (inputs, Some(fault))
}

fn pool_config() -> PoolConfig {
    PoolConfig {
        replicas: 3,
        auto_patch: false,
        ..PoolConfig::default()
    }
}

/// The single-pool reference: the same inputs, serially, seed index =
/// submission index — exactly what the front-end's global sequence
/// reproduces.
fn serial_reference(
    workload: &(dyn Workload + Sync),
    inputs: &[WorkloadInput],
    fault: Option<FaultSpec>,
) -> Vec<ReplicatedOutcome> {
    std::thread::scope(|scope| {
        let mut pool = ReplicaPool::scoped(scope, workload, pool_config(), PatchTable::new());
        let outcomes = pool.run_batch(inputs, fault);
        pool.shutdown();
        outcomes.into_iter().map(|o| o.outcome).collect()
    })
}

/// Determinism pin: K pools, either routing policy, bounded queues —
/// byte-identical to the serial single-pool run of the same inputs.
#[test]
fn frontend_outcomes_match_a_single_pool_byte_for_byte() {
    let workload = EspressoLike::new();
    let (inputs, fault) = mixed_batch();
    let reference = serial_reference(&workload, &inputs, fault);
    for route in [RouteBy::RoundRobin, RouteBy::InputHash] {
        let outcomes: Vec<ReplicatedOutcome> = std::thread::scope(|scope| {
            let frontend = PoolFrontend::scoped(
                scope,
                &workload,
                FrontendConfig {
                    pools: 3,
                    pool: pool_config(),
                    // Deliberately tiny: the pin must hold through
                    // backpressure stalls.
                    queue_capacity: 2,
                    route,
                    share_isolated: false,
                    ..FrontendConfig::default()
                },
                PatchTable::new(),
            );
            let outcomes = frontend
                .run_all(&inputs, fault)
                .into_iter()
                .map(|o| o.outcome)
                .collect();
            frontend.shutdown();
            outcomes
        });
        assert_eq!(outcomes.len(), reference.len());
        for (job, (a, b)) in outcomes.iter().zip(&reference).enumerate() {
            assert_eq!(
                a.replicas, b.replicas,
                "replica summaries diverged at job {job} ({route:?})"
            );
            assert_eq!(a, b, "outcome diverged at job {job} ({route:?})");
        }
    }
}

/// The acceptance stress: N concurrent submitter threads over K pools.
/// Every outcome must be byte-identical to what one pool produces when
/// fed the same inputs serially in the front-end's arrival order — i.e.
/// concurrency decided only *arrival order*, which is real nondeterminism
/// a serial caller has too, and nothing else.
#[test]
fn concurrent_submitters_match_serial_replay_in_arrival_order() {
    let workload = SquidLike::new();
    let sessions = multi_client_sessions(4, 6, 4, None);
    let collected: Mutex<Vec<(u64, WorkloadInput, ReplicatedOutcome)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        let frontend = PoolFrontend::scoped(
            scope,
            &workload,
            FrontendConfig {
                pools: 2,
                pool: pool_config(),
                queue_capacity: 3,
                max_inflight: 2,
                share_isolated: false,
                ..FrontendConfig::default()
            },
            PatchTable::new(),
        );
        std::thread::scope(|clients| {
            for session in &sessions {
                let frontend = &frontend;
                let collected = &collected;
                clients.spawn(move || {
                    for input in session {
                        let ticket = frontend.submit(input, None);
                        let seq = ticket.job();
                        let outcome = ticket.wait();
                        assert_eq!(outcome.job, seq, "ticket/outcome sequence mismatch");
                        collected.lock().expect("collection lock").push((
                            seq,
                            input.clone(),
                            outcome.outcome,
                        ));
                    }
                });
            }
        });
        let stats = frontend.stats();
        assert_eq!(stats.submitted, 24);
        assert_eq!(stats.completed, 24);
        assert_eq!(stats.failures, 0, "benign traffic produced failures");
        frontend.shutdown();
    });

    let mut collected = collected.into_inner().expect("collection lock");
    collected.sort_by_key(|(seq, _, _)| *seq);
    // Sequence numbers are exactly 0..N: nothing lost, nothing invented.
    for (i, (seq, _, _)) in collected.iter().enumerate() {
        assert_eq!(*seq, i as u64, "sequence numbers have gaps");
    }
    let arrival_inputs: Vec<WorkloadInput> = collected
        .iter()
        .map(|(_, input, _)| input.clone())
        .collect();
    let reference = serial_reference(&workload, &arrival_inputs, None);
    for ((seq, _, outcome), expected) in collected.iter().zip(&reference) {
        assert_eq!(
            outcome, expected,
            "job {seq} diverged from its serial replay"
        );
    }
}

/// Epoch fan-out is front-end-atomic: after `load_epoch` returns, a job
/// submitted to *any* pool runs under the epoch's table, and the epoch
/// version is a single number.
#[test]
fn epoch_fanout_reaches_every_pool() {
    let workload = EspressoLike::new();
    std::thread::scope(|scope| {
        let frontend = PoolFrontend::scoped(
            scope,
            &workload,
            FrontendConfig {
                pools: 3,
                pool: pool_config(),
                route: RouteBy::RoundRobin,
                ..FrontendConfig::default()
            },
            PatchTable::new(),
        );
        let genesis = xt_patch::PatchEpoch::genesis();
        assert!(
            !frontend.load_epoch(&genesis),
            "genesis is never an advance"
        );
        let mut table = PatchTable::new();
        table.add_pad(xt_alloc::SiteHash::from_raw(0xFEED), 32);
        let epoch = genesis.succeed(&table);
        assert!(frontend.load_epoch(&epoch));
        assert!(!frontend.load_epoch(&epoch), "same epoch must not reload");
        assert_eq!(frontend.epoch(), 1);
        // Round-robin walks all 3 pools: every job's patch floor includes
        // the epoch pad, whichever pool served it.
        for seed in 0..6 {
            let out = frontend
                .submit(&WorkloadInput::with_seed(seed), None)
                .wait();
            assert!(
                out.outcome
                    .patches
                    .pad_for(xt_alloc::SiteHash::from_raw(0xFEED))
                    >= 32,
                "epoch patches missing from job {seed}'s table"
            );
        }
        frontend.shutdown();
    });
}

/// A front-end serving attack traffic heals *all* pools: patches isolated
/// by whichever pool saw the failure fan out to the siblings, so the same
/// attack is later served cleanly everywhere (`share_isolated`).
#[test]
fn isolated_patches_fan_out_to_sibling_pools() {
    let workload = SquidLike::new();
    // Client sessions with the crafted URL in every 3rd batch.
    let sessions = multi_client_sessions(3, 9, 12, Some(3));
    std::thread::scope(|scope| {
        let frontend = PoolFrontend::scoped(
            scope,
            &workload,
            FrontendConfig {
                pools: 2,
                pool: PoolConfig {
                    replicas: 6,
                    ..PoolConfig::default()
                },
                route: RouteBy::RoundRobin,
                share_isolated: true,
                ..FrontendConfig::default()
            },
            PatchTable::new(),
        );
        // Interleave the clients' batches round-robin (batch-major), as a
        // server would see them.
        let mut healed_attacks = 0;
        let mut errors = 0;
        for batch in 0..sessions[0].len() {
            let outcomes: Vec<_> = sessions
                .iter()
                .map(|session| frontend.submit(&session[batch], None))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|t| t.wait())
                .collect();
            for out in outcomes {
                if out.outcome.error_observed() {
                    errors += 1;
                } else if batch % 3 == 2 && !frontend.patches().is_empty() {
                    healed_attacks += 1;
                }
            }
        }
        assert!(errors >= 1, "the seeded overflow never manifested");
        assert!(
            healed_attacks >= 1,
            "no attack batch was served cleanly after patching"
        );
        assert!(
            frontend.patches().pads().any(|(_, pad)| pad >= 6),
            "no pad large enough for the 6-byte trailer"
        );
        assert_eq!(frontend.stats().failures, errors);
        frontend.shutdown();
    });
}
