//! Differential mode-equivalence matrix (§3.4, §7.2): for a matrix of
//! (workload × fault kind) cells, the paper's three modes of operation —
//! iterative, replicated, and cumulative — must converge on patches
//! naming the *same* allocation site. That is the paper's core claim: the
//! modes differ in deployment shape (replay vs. live replicas vs.
//! statistics across runs), not in which bug they find.
//!
//! Each cell injects one deterministic fault and drives all three modes
//! to isolation. Injection parameters (trigger allocation ordinal per
//! cell) were discovered once by scanning manifesting candidates with the
//! paper's §7.2 methodology — "we run the injector using a random seed
//! until it triggers an error" — and are hardcoded so the matrix runs
//! deterministically and does not pay the screening search. Overflow
//! culprits come from *cold* allocation sites where needed, since
//! cumulative mode's evidence strength scales inversely with the culprit
//! site's allocation volume (the §7.3 Mozilla observation).
//!
//! **Rediscovering injection triggers.** If a workload or allocator
//! change invalidates a hardcoded trigger ordinal (a cell stops
//! manifesting, or manifests as a different fault), rerun the §7.2 scan
//! for that cell with
//! [`exterminator::runner::find_manifesting_fault`]: give it the cell's
//! workload, input, and fault kind, and sweep candidate trigger ordinals
//! (and overflow deltas) until it returns a spec whose run raises the
//! expected signal — `crates/bench/src/bin/exp_injected_overflows.rs`
//! drives the same helper as a harness and is the template to crib.
//! Paste the ordinal it finds back into the matrix below.

use std::collections::BTreeSet;

use exterminator::cumulative::{CumulativeMode, CumulativeModeConfig};
use exterminator::iterative::{IterativeConfig, IterativeMode};
use exterminator::pool::{PoolConfig, ReplicaPool};
use xt_alloc::AllocTime;
use xt_faults::{FaultKind, FaultSpec};
use xt_patch::PatchTable;
use xt_workloads::{EspressoLike, ProfileWorkload, Workload, WorkloadInput};

/// Allocation sites a patch table names: pad sites plus deferral
/// allocation sites — the "which bug is this" identity of a patch.
fn sites_of(patches: &PatchTable) -> BTreeSet<u32> {
    patches
        .pads()
        .map(|(s, _)| s.raw())
        .chain(patches.deferrals().map(|(p, _)| p.alloc.raw()))
        .collect()
}

/// Iterative mode: replay-based repair (§3.4). Returns the sites its
/// patches name.
fn iterative_sites(
    w: &(dyn Workload + Sync),
    input: &WorkloadInput,
    fault: FaultSpec,
) -> BTreeSet<u32> {
    let mut mode = IterativeMode::new(IterativeConfig::default());
    let outcome = mode.repair(w, input, Some(fault));
    assert!(outcome.fixed, "iterative mode failed to repair");
    assert!(
        !outcome.patches.is_empty(),
        "iterative repair with no patches"
    );
    sites_of(&outcome.patches)
}

/// Replicated mode: a persistent six-replica pool re-serving the same
/// input until its self-isolated patches silence the fault.
fn replicated_sites(
    w: &(dyn Workload + Sync),
    input: &WorkloadInput,
    fault: FaultSpec,
) -> BTreeSet<u32> {
    std::thread::scope(|scope| {
        let mut pool = ReplicaPool::scoped(
            scope,
            w,
            PoolConfig {
                replicas: 6,
                ..PoolConfig::default()
            },
            PatchTable::new(),
        );
        let mut sites = BTreeSet::new();
        for _ in 0..6 {
            let out = pool.run_one(input, Some(fault));
            sites.extend(sites_of(&out.outcome.patches));
            if !out.outcome.error_observed() && !sites.is_empty() {
                break;
            }
        }
        pool.shutdown();
        assert!(!sites.is_empty(), "replicated mode isolated nothing");
        sites
    })
}

/// Cumulative mode: per-run summaries folded into the Bayesian classifier
/// until some site crosses the threshold (§5).
fn cumulative_sites(
    w: &(dyn Workload + Sync),
    input: &WorkloadInput,
    fault: FaultSpec,
) -> BTreeSet<u32> {
    let mut mode = CumulativeMode::new(CumulativeModeConfig::default());
    let outcome = mode.run_until_isolated(w, input, Some(fault), 160);
    assert!(
        outcome.isolated,
        "cumulative mode never isolated in {} runs",
        outcome.runs
    );
    let sites = sites_of(&outcome.patches);
    assert!(
        !sites.is_empty(),
        "cumulative isolation generated no patches"
    );
    sites
}

/// One matrix cell: workload, fault kind, and the discovered trigger.
struct Cell {
    workload: &'static str,
    kind: &'static str,
    make: fn() -> Box<dyn Workload + Sync>,
    fault: FaultSpec,
}

fn cell(
    workload: &'static str,
    kind: &'static str,
    make: fn() -> Box<dyn Workload + Sync>,
    fault_kind: FaultKind,
    trigger: u64,
) -> Cell {
    Cell {
        workload,
        kind,
        make,
        fault: FaultSpec {
            kind: fault_kind,
            trigger: AllocTime::from_raw(trigger),
        },
    }
}

/// The matrix: 3 workloads × 3 fault kinds (the paper's overflow deltas
/// 4/20/36, §7.2), plus a dangling-free cell on espresso — the one
/// workload whose unchecked write-after-free path makes the dangling
/// fault isolatable in *all three* modes (the paper itself isolated only
/// 4 of 10 injected dangling faults in iterative mode).
fn matrix() -> Vec<Cell> {
    const OV4: FaultKind = FaultKind::BufferOverflow {
        delta: 4,
        fill: 0xEE,
    };
    const OV20: FaultKind = FaultKind::BufferOverflow {
        delta: 20,
        fill: 0xEE,
    };
    const OV36: FaultKind = FaultKind::BufferOverflow {
        delta: 36,
        fill: 0x77,
    };
    const DANGLING: FaultKind = FaultKind::DanglingFree { lag: 12 };
    let espresso = || Box::new(EspressoLike::new()) as Box<dyn Workload + Sync>;
    let lindsay = || Box::new(ProfileWorkload::lindsay_like()) as Box<dyn Workload + Sync>;
    let p2c = || Box::new(ProfileWorkload::p2c_like()) as Box<dyn Workload + Sync>;
    vec![
        cell("espresso", "overflow-4", espresso, OV4, 131),
        cell("espresso", "overflow-20", espresso, OV20, 65),
        cell("espresso", "overflow-36", espresso, OV36, 65),
        cell("lindsay", "overflow-4", lindsay, OV4, 56),
        cell("lindsay", "overflow-20", lindsay, OV20, 56),
        cell("lindsay", "overflow-36", lindsay, OV36, 50),
        cell("p2c", "overflow-4", p2c, OV4, 50),
        cell("p2c", "overflow-20", p2c, OV20, 50),
        cell("p2c", "overflow-36", p2c, OV36, 50),
        cell("espresso", "dangling-12", espresso, DANGLING, 154),
    ]
}

#[test]
fn all_three_modes_converge_on_the_same_allocation_site() {
    let cells = matrix();
    // The acceptance floor: at least a 3×3 grid.
    let workloads: BTreeSet<&str> = cells.iter().map(|c| c.workload).collect();
    let kinds: BTreeSet<&str> = cells.iter().map(|c| c.kind).collect();
    assert!(workloads.len() >= 3, "matrix too narrow: {workloads:?}");
    assert!(kinds.len() >= 3, "matrix too shallow: {kinds:?}");

    let input = WorkloadInput::with_seed(6).intensity(3);
    for c in cells {
        let w = (c.make)();
        let it = iterative_sites(w.as_ref(), &input, c.fault);
        let re = replicated_sites(w.as_ref(), &input, c.fault);
        let cu = cumulative_sites(w.as_ref(), &input, c.fault);
        let common: Vec<u32> = it
            .intersection(&re)
            .copied()
            .collect::<BTreeSet<u32>>()
            .intersection(&cu)
            .copied()
            .collect();
        assert!(
            !common.is_empty(),
            "cell ({}, {}): modes disagree on the culprit site\n  iterative:  {it:x?}\n  replicated: {re:x?}\n  cumulative: {cu:x?}",
            c.workload,
            c.kind,
        );
    }
}

/// The dangling cell's agreement is specifically about the *deferral*
/// patch family: all three modes must name the same allocation site in a
/// deferral (not merely overlap on some pad).
#[test]
fn dangling_cell_agrees_on_the_deferred_allocation_site() {
    let input = WorkloadInput::with_seed(6).intensity(3);
    let fault = FaultSpec {
        kind: FaultKind::DanglingFree { lag: 12 },
        trigger: AllocTime::from_raw(154),
    };
    let w = EspressoLike::new();

    let defer_sites = |patches: &PatchTable| -> BTreeSet<u32> {
        patches.deferrals().map(|(p, _)| p.alloc.raw()).collect()
    };

    let mut it_mode = IterativeMode::new(IterativeConfig::default());
    let it = it_mode.repair(&w, &input, Some(fault));
    assert!(it.fixed);
    let it = defer_sites(&it.patches);

    let re = std::thread::scope(|scope| {
        let mut pool = ReplicaPool::scoped(
            scope,
            &w,
            PoolConfig {
                replicas: 6,
                ..PoolConfig::default()
            },
            PatchTable::new(),
        );
        let mut sites = BTreeSet::new();
        for _ in 0..6 {
            let out = pool.run_one(&input, Some(fault));
            sites.extend(defer_sites(&out.outcome.patches));
            if !out.outcome.error_observed() && !sites.is_empty() {
                break;
            }
        }
        pool.shutdown();
        sites
    });

    let mut cu_mode = CumulativeMode::new(CumulativeModeConfig::default());
    let cu_out = cu_mode.run_until_isolated(&w, &input, Some(fault), 160);
    assert!(cu_out.isolated);
    let cu = defer_sites(&cu_out.patches);

    let common: Vec<u32> = it
        .intersection(&re)
        .copied()
        .collect::<BTreeSet<u32>>()
        .intersection(&cu)
        .copied()
        .collect();
    assert!(
        !common.is_empty(),
        "deferral sites disagree:\n  iterative:  {it:x?}\n  replicated: {re:x?}\n  cumulative: {cu:x?}"
    );
}
