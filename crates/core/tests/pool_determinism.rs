//! Determinism pins for the persistent replica pool: identical
//! seeds/config ⇒ byte-identical outcomes, so pooled arena reuse can never
//! leak state between inputs and thread scheduling can never change a
//! verdict. These are the properties every other pool consumer (the
//! differential mode tests, the fleet simulator, the benches) stands on.

use std::time::Duration;

use exterminator::pool::{PoolConfig, ReplicaPool, Straggler};
use exterminator::replicated::{run_replicated, ReplicatedConfig, ReplicatedOutcome};
use exterminator::voter::output_digest;
use xt_alloc::AllocTime;
use xt_faults::{FaultKind, FaultSpec};
use xt_patch::PatchTable;
use xt_workloads::{EspressoLike, SquidLike, Workload, WorkloadInput};

/// A batch mixing clean inputs with a data-corrupting overflow, so the
/// determinism claim covers voting, isolation, and patch escalation — not
/// just the happy path.
fn mixed_batch() -> (Vec<WorkloadInput>, Option<FaultSpec>) {
    let inputs = (0..8).map(WorkloadInput::with_seed).collect();
    let fault = FaultSpec {
        kind: FaultKind::BufferOverflow {
            delta: 8,
            fill: 0x44,
        },
        trigger: AllocTime::from_raw(90),
    };
    (inputs, Some(fault))
}

fn run_pool_batch(
    workload: &(dyn Workload + Sync),
    config: &PoolConfig,
    inputs: &[WorkloadInput],
    fault: Option<FaultSpec>,
) -> Vec<ReplicatedOutcome> {
    std::thread::scope(|scope| {
        let mut pool = ReplicaPool::scoped(scope, workload, config.clone(), PatchTable::new());
        let outcomes = pool.run_batch(inputs, fault);
        pool.shutdown();
        outcomes.into_iter().map(|o| o.outcome).collect()
    })
}

#[test]
fn identical_pools_produce_byte_identical_outcomes() {
    let workload = EspressoLike::new();
    let (inputs, fault) = mixed_batch();
    let config = PoolConfig {
        replicas: 5,
        ..PoolConfig::default()
    };
    let first = run_pool_batch(&workload, &config, &inputs, fault);
    let second = run_pool_batch(&workload, &config, &inputs, fault);
    assert_eq!(first.len(), second.len());
    for (job, (a, b)) in first.iter().zip(&second).enumerate() {
        // Replica digests are the strongest pin: byte-identical output per
        // replica, not merely an equal vote.
        assert_eq!(
            a.replicas, b.replicas,
            "replica summaries diverged at job {job}"
        );
        assert_eq!(a.vote, b.vote, "vote diverged at job {job}");
        assert_eq!(a.patches, b.patches, "patches diverged at job {job}");
        assert_eq!(a, b, "outcome diverged at job {job}");
        // And the summaries' digests really are digests of the outputs the
        // voter saw.
        for r in &a.replicas {
            if r.output_digest == output_digest(&a.vote.winner) {
                assert_eq!(r.output_len, a.vote.winner.len());
            }
        }
    }
}

/// Scheduling noise — here an injected straggler on one replica — may move
/// wall-clock timings but must not change any outcome bit.
#[test]
fn straggler_scheduling_does_not_change_outcomes() {
    let workload = EspressoLike::new();
    let (inputs, fault) = mixed_batch();
    let smooth = PoolConfig {
        replicas: 3,
        ..PoolConfig::default()
    };
    let staggered = PoolConfig {
        replicas: 3,
        straggler: Some(Straggler {
            replica: 1,
            delay: Duration::from_millis(5),
        }),
        ..PoolConfig::default()
    };
    let a = run_pool_batch(&workload, &smooth, &inputs, fault);
    let b = run_pool_batch(&workload, &staggered, &inputs, fault);
    assert_eq!(a, b, "a slow replica changed a deterministic outcome");
}

/// The one-shot wrapper and a persistent pool's job 0 are the same
/// computation: `run_replicated` callers lost nothing in the rewrite.
#[test]
fn one_shot_wrapper_matches_pool_job_zero() {
    let workload = SquidLike::new();
    let input = WorkloadInput::with_seed(4).payload(xt_workloads::benign_requests(6));
    let config = ReplicatedConfig {
        replicas: 4,
        ..ReplicatedConfig::default()
    };
    let one_shot = run_replicated(&workload, &input, None, &PatchTable::new(), &config);
    let pooled = std::thread::scope(|scope| {
        let mut pool =
            ReplicaPool::scoped(scope, &workload, config.to_pool_config(), PatchTable::new());
        let outcome = pool.run_one(&input, None).outcome;
        pool.shutdown();
        outcome
    });
    assert_eq!(one_shot, pooled);
}

/// Pooled reuse must not leak: an input's outcome is independent of what
/// the pool executed before it. Job seeds depend on the job index, so the
/// comparison pins the *same* job index reached via different histories —
/// a pool that ran 3 earlier inputs vs. a pool that ran 3 different
/// earlier inputs.
#[test]
fn prior_inputs_do_not_leak_into_later_outcomes() {
    let workload = EspressoLike::new();
    let probe = WorkloadInput::with_seed(99).intensity(2);
    let history_a: Vec<WorkloadInput> = (0..3).map(WorkloadInput::with_seed).collect();
    let history_b: Vec<WorkloadInput> = (10..13).map(WorkloadInput::with_seed).collect();
    let config = PoolConfig {
        replicas: 3,
        auto_patch: false, // histories must not differ in loaded patches
        ..PoolConfig::default()
    };
    let outcome_after = |history: &[WorkloadInput]| {
        std::thread::scope(|scope| {
            let mut pool = ReplicaPool::scoped(scope, &workload, config.clone(), PatchTable::new());
            for input in history {
                let _ = pool.run_one(input, None);
            }
            let out = pool.run_one(&probe, None).outcome;
            pool.shutdown();
            out
        })
    };
    assert_eq!(
        outcome_after(&history_a),
        outcome_after(&history_b),
        "earlier inputs leaked into a later job's outcome"
    );
}
