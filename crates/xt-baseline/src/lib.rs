//! A Lea-style (GNU libc) freelist allocator over the simulated address
//! space: the baseline Exterminator is compared against in Fig. 7.
//!
//! The paper measures Exterminator's overhead "versus the GNU libc
//! allocator... based on the Lea allocator". This crate reproduces the
//! *behavioural* properties of that family that matter for the comparison
//! and for the motivation examples:
//!
//! * **Inline chunk headers.** Every object is preceded by a 16-byte header
//!   in the heap itself. Buffer overflows therefore corrupt allocator
//!   metadata, and (like glibc's `malloc_printerr`) the allocator *detects
//!   corruption and aborts* rather than continuing — observable through
//!   [`BaselineHeap::poisoned`].
//! * **LIFO freelist reuse.** A freed chunk is the first candidate for the
//!   next same-size allocation, so dangling pointers alias fresh objects
//!   almost immediately — the failure mode DieHard randomizes away.
//! * **Contiguous carving.** Fresh chunks are carved sequentially from
//!   segments, so consecutive allocations are physically adjacent and a
//!   small overflow reliably lands on a neighbour.
//! * **No per-object randomization, no canaries, no over-provisioning** —
//!   and correspondingly less work per operation, which is exactly why it
//!   is the fast end of Fig. 7.
//!
//! # Example
//!
//! ```
//! use xt_alloc::{Heap, SiteHash};
//! use xt_baseline::BaselineHeap;
//!
//! # fn main() -> Result<(), xt_alloc::HeapError> {
//! let mut heap = BaselineHeap::with_seed(1);
//! let site = SiteHash::from_raw(9);
//! let a = heap.malloc(24, site)?;
//! heap.free(a, site);
//! let b = heap.malloc(24, site)?;
//! assert_eq!(a, b, "LIFO freelist reuses the chunk immediately");
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use xt_alloc::{AllocTime, FreeOutcome, Heap, HeapError, SiteHash};
use xt_arena::{Addr, Arena, Rng};

/// Bytes of inline metadata before each payload.
pub const HEADER_SIZE: usize = 16;

/// Allocation granularity (payloads are rounded up to this).
const GRANULE: usize = 16;

/// Fresh-segment size when the current one is exhausted.
const SEGMENT_SIZE: usize = 256 * 1024;

/// Header magic for a live chunk.
const MAGIC_LIVE: u32 = 0x21AE_117E;

/// Header magic for a free chunk.
const MAGIC_FREE: u32 = 0xF4EE_C804;

/// Largest request honoured (matches the DieHard configuration's default).
const MAX_REQUEST: usize = 1 << 16;

/// The baseline freelist allocator. See the [crate docs](self) for the
/// properties it reproduces.
#[derive(Debug)]
pub struct BaselineHeap {
    arena: Arena,
    rng: Rng,
    /// Bump pointer within the current segment.
    cursor: Addr,
    /// End of the current segment.
    segment_end: Addr,
    /// Size-segregated LIFO freelists, keyed by chunk payload size.
    bins: HashMap<usize, Vec<Addr>>,
    clock: AllocTime,
    live: usize,
    poisoned: bool,
    footprint: usize,
}

impl BaselineHeap {
    /// Creates an empty heap; segments are mapped on demand.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        BaselineHeap {
            arena: Arena::new(),
            rng: Rng::new(seed),
            cursor: Addr::NULL,
            segment_end: Addr::NULL,
            bins: HashMap::new(),
            clock: AllocTime::ZERO,
            live: 0,
            poisoned: false,
            footprint: 0,
        }
    }

    /// `true` once the allocator has detected metadata corruption (the
    /// analogue of glibc aborting with "malloc(): corrupted ...").
    #[must_use]
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Number of live objects.
    #[must_use]
    pub fn live_objects(&self) -> usize {
        self.live
    }

    /// Total bytes of mapped segments.
    #[must_use]
    pub fn footprint(&self) -> usize {
        self.footprint
    }

    fn round_payload(size: usize) -> usize {
        size.div_ceil(GRANULE) * GRANULE
    }

    fn carve(&mut self, chunk: usize) -> Result<Addr, HeapError> {
        if self.cursor.is_null() || self.cursor + chunk as u64 > self.segment_end {
            let seg_len = SEGMENT_SIZE.max(chunk);
            let base = self
                .arena
                .try_map(seg_len, &mut self.rng)
                .map_err(|_| HeapError::OutOfMemory { requested: chunk })?;
            self.cursor = base;
            self.segment_end = base + seg_len as u64;
            self.footprint += seg_len;
        }
        let at = self.cursor;
        self.cursor += chunk as u64;
        Ok(at)
    }

    fn write_header(&mut self, header: Addr, payload: usize, magic: u32) {
        self.arena
            .write_u64(header, payload as u64)
            .expect("header memory is mapped");
        self.arena
            .write_u32(header + 8, magic)
            .expect("header memory is mapped");
        self.arena
            .write_u32(header + 12, 0)
            .expect("header memory is mapped");
    }

    fn read_header(&self, header: Addr) -> Option<(usize, u32)> {
        let payload = self.arena.read_u64(header).ok()?;
        let magic = self.arena.read_u32(header + 8).ok()?;
        Some((payload as usize, magic))
    }
}

impl Heap for BaselineHeap {
    fn malloc(&mut self, size: usize, _site: SiteHash) -> Result<Addr, HeapError> {
        if size == 0 {
            return Err(HeapError::ZeroSize);
        }
        if size > MAX_REQUEST {
            return Err(HeapError::RequestTooLarge {
                requested: size,
                max: MAX_REQUEST,
            });
        }
        let payload = Self::round_payload(size);
        self.clock = self.clock.next();
        // LIFO bin reuse first, then carve fresh space.
        let ptr = if let Some(ptr) = self.bins.get_mut(&payload).and_then(Vec::pop) {
            ptr
        } else {
            let header = self.carve(HEADER_SIZE + payload)?;
            header + HEADER_SIZE as u64
        };
        self.write_header(ptr - HEADER_SIZE as u64, payload, MAGIC_LIVE);
        self.live += 1;
        Ok(ptr)
    }

    fn free(&mut self, ptr: Addr, _site: SiteHash) -> FreeOutcome {
        if ptr.get() < HEADER_SIZE as u64 {
            return FreeOutcome::InvalidFreeIgnored;
        }
        let header = ptr - HEADER_SIZE as u64;
        let Some((payload, magic)) = self.read_header(header) else {
            return FreeOutcome::InvalidFreeIgnored;
        };
        match magic {
            MAGIC_LIVE => {
                // Sanity-check the recorded size the way glibc validates
                // chunk fields; nonsense means an overflow trampled us.
                if payload == 0 || payload > MAX_REQUEST || payload % GRANULE != 0 {
                    self.poisoned = true;
                    return FreeOutcome::InvalidFreeIgnored;
                }
                self.write_header(header, payload, MAGIC_FREE);
                self.bins.entry(payload).or_default().push(ptr);
                self.live -= 1;
                FreeOutcome::Freed
            }
            MAGIC_FREE => {
                // "double free or corruption" — glibc aborts.
                self.poisoned = true;
                FreeOutcome::DoubleFreeIgnored
            }
            _ => {
                // Header overwritten by an overflow: corruption detected.
                self.poisoned = true;
                FreeOutcome::InvalidFreeIgnored
            }
        }
    }

    fn arena(&self) -> &Arena {
        &self.arena
    }

    fn arena_mut(&mut self) -> &mut Arena {
        &mut self.arena
    }

    fn clock(&self) -> AllocTime {
        self.clock
    }

    fn usable_size(&self, ptr: Addr) -> Option<usize> {
        if ptr.get() < HEADER_SIZE as u64 {
            return None;
        }
        let (payload, magic) = self.read_header(ptr - HEADER_SIZE as u64)?;
        (magic == MAGIC_LIVE).then_some(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SITE: SiteHash = SiteHash::from_raw(1);

    #[test]
    fn allocations_are_contiguous_chunks() {
        let mut h = BaselineHeap::with_seed(1);
        let a = h.malloc(16, SITE).unwrap();
        let b = h.malloc(16, SITE).unwrap();
        assert_eq!(b - a, (16 + HEADER_SIZE) as u64, "sequential carving");
    }

    #[test]
    fn freelist_is_lifo_per_size() {
        let mut h = BaselineHeap::with_seed(2);
        let a = h.malloc(32, SITE).unwrap();
        let b = h.malloc(32, SITE).unwrap();
        h.free(a, SITE);
        h.free(b, SITE);
        assert_eq!(h.malloc(32, SITE).unwrap(), b, "LIFO order");
        assert_eq!(h.malloc(32, SITE).unwrap(), a);
    }

    #[test]
    fn different_sizes_use_different_bins() {
        let mut h = BaselineHeap::with_seed(3);
        let a = h.malloc(16, SITE).unwrap();
        h.free(a, SITE);
        let b = h.malloc(48, SITE).unwrap();
        assert_ne!(a, b, "48-byte request must not reuse 16-byte chunk");
    }

    #[test]
    fn data_round_trips() {
        let mut h = BaselineHeap::with_seed(4);
        let mut ptrs = Vec::new();
        for i in 0..500u64 {
            let p = h.malloc(16 + (i % 7) as usize * 16, SITE).unwrap();
            h.arena_mut().write_u64(p, i).unwrap();
            ptrs.push(p);
        }
        for (i, p) in ptrs.iter().enumerate() {
            assert_eq!(h.arena().read_u64(*p).unwrap(), i as u64);
        }
        assert_eq!(h.live_objects(), 500);
    }

    #[test]
    fn double_free_poisons() {
        let mut h = BaselineHeap::with_seed(5);
        let p = h.malloc(16, SITE).unwrap();
        assert_eq!(h.free(p, SITE), FreeOutcome::Freed);
        assert!(!h.poisoned());
        assert_eq!(h.free(p, SITE), FreeOutcome::DoubleFreeIgnored);
        assert!(h.poisoned(), "double free must be detected");
    }

    #[test]
    fn overflow_corrupting_next_header_poisons_on_free() {
        let mut h = BaselineHeap::with_seed(6);
        let a = h.malloc(16, SITE).unwrap();
        let b = h.malloc(16, SITE).unwrap();
        // Overflow 20 bytes out of `a`: tramples b's header.
        h.arena_mut().write_bytes(a, &[0xEE; 36]).unwrap();
        assert_eq!(h.free(b, SITE), FreeOutcome::InvalidFreeIgnored);
        assert!(h.poisoned(), "corrupted header must be detected");
    }

    #[test]
    fn dangling_pointer_aliases_next_allocation() {
        // The motivating failure: baseline recycles memory immediately, so a
        // write through a dangling pointer corrupts the new owner's data.
        let mut h = BaselineHeap::with_seed(7);
        let stale = h.malloc(64, SITE).unwrap();
        h.free(stale, SITE);
        let fresh = h.malloc(64, SITE).unwrap();
        assert_eq!(stale, fresh);
        h.arena_mut().write_u64(fresh, 1111).unwrap();
        h.arena_mut().write_u64(stale, 2222).unwrap(); // dangling write
        assert_eq!(
            h.arena().read_u64(fresh).unwrap(),
            2222,
            "silent corruption"
        );
    }

    #[test]
    fn invalid_frees_ignored_without_poison() {
        let mut h = BaselineHeap::with_seed(8);
        let _ = h.malloc(16, SITE).unwrap();
        assert_eq!(
            h.free(Addr::new(0x4444_0000), SITE),
            FreeOutcome::InvalidFreeIgnored
        );
        assert_eq!(h.free(Addr::new(4), SITE), FreeOutcome::InvalidFreeIgnored);
    }

    #[test]
    fn usable_size_reports_rounded_payload() {
        let mut h = BaselineHeap::with_seed(9);
        let p = h.malloc(20, SITE).unwrap();
        assert_eq!(h.usable_size(p), Some(32));
        h.free(p, SITE);
        assert_eq!(h.usable_size(p), None);
    }

    #[test]
    fn zero_and_oversized_rejected() {
        let mut h = BaselineHeap::with_seed(10);
        assert_eq!(h.malloc(0, SITE), Err(HeapError::ZeroSize));
        assert!(matches!(
            h.malloc(1 << 20, SITE),
            Err(HeapError::RequestTooLarge { .. })
        ));
    }

    #[test]
    fn large_churn_reuses_memory() {
        let mut h = BaselineHeap::with_seed(11);
        for _ in 0..10 {
            let ptrs: Vec<Addr> = (0..1000).map(|_| h.malloc(64, SITE).unwrap()).collect();
            for p in ptrs {
                h.free(p, SITE);
            }
        }
        // 10 rounds of 1000 × 80-byte chunks fit comfortably in one segment
        // if the freelist recycles.
        assert!(
            h.footprint() <= SEGMENT_SIZE,
            "footprint {} exceeds one segment",
            h.footprint()
        );
        assert_eq!(h.clock(), AllocTime::from_raw(10_000));
    }
}
