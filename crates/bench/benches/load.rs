//! Saturation load harness: ramp a remote client population against one
//! [`NetFrontend`] until throughput stops scaling, and record the knee.
//!
//! ```text
//! cargo bench -p bench --bench load
//! ```
//!
//! Each ramp stage binds a fresh server (2 pools × 3 replicas, bounded
//! queues) and drives it with `N` concurrent [`NetClient`]s over real
//! localhost TCP, each pipelining a fixed job budget. Stage throughput
//! comes from wall clock; the **knee** ([`bench::knee`]) is the first
//! stage whose marginal throughput gain over the previous stage falls
//! under 15% despite the client population doubling — beyond it the
//! bounded queues are full and extra clients only deepen queue wait
//! (visible in the `frontend/queue_wait` histogram pulled from the
//! saturated server). The knee line says *how* scaling ended: `plateau`
//! (flat step), `regression` (throughput fell — the headline finding,
//! never to be read as mere saturation), or `peak` (never stopped
//! scaling; argmax).
//!
//! Two invariants are asserted, not just measured:
//!
//! 1. **Determinism at saturation.** Every outcome digest from the
//!    most-saturated stage, ordered by the front-end's global sequence,
//!    must be byte-identical to an in-process serial replay of the same
//!    inputs in arrival order — the wire layer under full contention
//!    still decides only arrival order.
//! 2. **The server stays observable under load.** The saturated stage's
//!    metrics pull must answer with nonzero per-stage histograms.
//!
//! Results go to `BENCH_load.json` (quick mode: the git-ignored
//! `.quick.json` sibling), with the rendered saturation metrics
//! snapshot beside it as `BENCH_load_metrics.txt`. 1-CPU caveat
//! (`env/cores`): on one core the knee mostly measures scheduling, not
//! queue capacity — read it against the recorded core count.

use std::sync::Mutex;
use std::time::Instant;

use bench::{bench_artifact_path, workspace_root, write_bench_json, BenchRecord};
use exterminator::frontend::FrontendConfig;
use exterminator::pool::PoolConfig;
use xt_net::{NetClient, NetConfig, NetFrontend};
use xt_patch::PatchTable;
use xt_workloads::{SquidLike, WorkloadInput};

/// Pool shape for every stage and for the serial reference. Determinism
/// pins must exclude auto-patching (patch visibility is
/// completion-order dependent; same exclusion as `xt-net/tests/net.rs`).
fn pool_config() -> PoolConfig {
    PoolConfig {
        replicas: 3,
        auto_patch: false,
        ..PoolConfig::default()
    }
}

fn net_config() -> NetConfig {
    NetConfig {
        frontend: FrontendConfig {
            pools: 2,
            pool: pool_config(),
            queue_capacity: 3,
            share_isolated: false,
            ..FrontendConfig::default()
        },
        ..NetConfig::default()
    }
}

/// One collected outcome: front-end global sequence, the input that
/// produced it, and its deterministic digest.
type Collected = (u64, WorkloadInput, u128);

/// What one ramp stage measured.
struct Stage {
    clients: usize,
    jobs: u64,
    jobs_per_sec: f64,
    ns_per_job: f64,
}

/// Runs one stage: `clients` connections, each pipelining
/// `jobs_per_client` submissions, against a fresh server. Returns the
/// stage measurement plus every `(sequence, input, digest)` collected.
fn run_stage(clients: usize, jobs_per_client: usize) -> (Stage, Vec<Collected>, NetFrontend) {
    let server =
        NetFrontend::bind(SquidLike::new(), "127.0.0.1:0", net_config()).expect("bind localhost");
    let addr = server.local_addr();
    let collected: Mutex<Vec<Collected>> = Mutex::new(Vec::new());
    let started = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let collected = &collected;
            scope.spawn(move || {
                let client = NetClient::connect(addr).expect("connect");
                let inputs: Vec<WorkloadInput> = (0..jobs_per_client)
                    .map(|j| WorkloadInput::with_seed((c * jobs_per_client + j) as u64))
                    .collect();
                let tickets: Vec<_> = inputs
                    .iter()
                    .map(|input| client.submit(input, None).expect("submit"))
                    .collect();
                let mut results = Vec::with_capacity(tickets.len());
                for (ticket, input) in tickets.into_iter().zip(inputs) {
                    let seq = ticket.job();
                    let outcome = ticket.wait().expect("outcome");
                    assert!(outcome.unanimous, "benign load diverged");
                    results.push((seq, input, outcome.digest));
                }
                collected.lock().expect("collection lock").extend(results);
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    let jobs = (clients * jobs_per_client) as u64;
    let stage = Stage {
        clients,
        jobs,
        jobs_per_sec: jobs as f64 / elapsed,
        ns_per_job: elapsed * 1e9 / jobs as f64,
    };
    (
        stage,
        collected.into_inner().expect("collection lock"),
        server,
    )
}

/// In-process serial reference digests for `inputs` in order — the pin
/// the saturated stage must match byte-for-byte.
fn serial_digests(inputs: &[WorkloadInput]) -> Vec<u128> {
    let workload = SquidLike::new();
    std::thread::scope(|scope| {
        let mut pool = exterminator::pool::ReplicaPool::scoped(
            scope,
            &workload,
            pool_config(),
            PatchTable::new(),
        );
        let outcomes = pool.run_batch(inputs, None);
        pool.shutdown();
        outcomes
            .iter()
            .map(exterminator::pool::PoolOutcome::deterministic_digest)
            .collect()
    })
}

fn main() {
    let quick = criterion::quick_mode();
    let (client_ramp, jobs_per_client): (&[usize], usize) = if quick {
        (&[1, 2], 3)
    } else {
        (&[1, 2, 4, 8], 12)
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("# load ramp: {client_ramp:?} clients x {jobs_per_client} jobs, {cores} cores\n");

    let mut records = vec![BenchRecord {
        name: "env/cores".into(),
        ns_per_op: cores as f64,
        ops_per_sec: 0.0,
    }];

    let mut stages: Vec<Stage> = Vec::new();
    let mut saturated: Option<(Vec<Collected>, NetFrontend)> = None;
    for &clients in client_ramp {
        let (stage, collected, server) = run_stage(clients, jobs_per_client);
        println!(
            "{:>3} clients: {:>7.1} jobs/s ({:.2} ms/job, {} jobs)",
            stage.clients,
            stage.jobs_per_sec,
            stage.ns_per_job / 1e6,
            stage.jobs
        );
        records.push(BenchRecord::from_ns(
            format!("load/clients_{clients}"),
            stage.ns_per_job,
        ));
        stages.push(stage);
        // Keep the most-saturated stage's server alive for the
        // determinism pin and the observability pull below.
        if let Some((_, old)) = saturated.replace((collected, server)) {
            old.shutdown();
        }
    }
    let (collected, server) = saturated.expect("at least one ramp stage");

    // Determinism at saturation: sequence-ordered digests must replay
    // byte-identical through a serial in-process pool.
    let mut collected = collected;
    collected.sort_by_key(|(seq, _, _)| *seq);
    for (i, (seq, _, _)) in collected.iter().enumerate() {
        assert_eq!(*seq, i as u64, "sequence numbers have gaps at saturation");
    }
    let arrival: Vec<WorkloadInput> = collected.iter().map(|(_, i, _)| i.clone()).collect();
    let reference = serial_digests(&arrival);
    for ((seq, _, digest), expected) in collected.iter().zip(&reference) {
        assert_eq!(
            digest, expected,
            "job {seq} diverged from the serial reference at saturation"
        );
    }
    println!(
        "\ndeterminism pin: {} saturated outcomes byte-identical to the serial reference",
        collected.len()
    );

    // The saturated server answers its own observability pull.
    let probe = NetClient::connect(server.local_addr()).expect("connect probe");
    let health = probe.pull_health().expect("health pull");
    assert!(health.healthy);
    let snapshot = probe.pull_metrics().expect("metrics pull");
    let queue_wait = snapshot
        .histogram("frontend/queue_wait")
        .expect("frontend/queue_wait");
    let rtt = snapshot.histogram("net/wire_rtt").expect("net/wire_rtt");
    assert_eq!(
        queue_wait.count(),
        collected.len() as u64,
        "saturated queue-wait histogram lost samples"
    );
    drop(probe);
    server.shutdown();

    // Knee analysis (bench::knee): total over non-finite throughputs, and
    // it tells a flat step apart from an outright drop — a regression at
    // the top of the ramp is the headline of a saturation run, not a
    // "plateau".
    let throughputs: Vec<f64> = stages.iter().map(|s| s.jobs_per_sec).collect();
    let verdict = bench::knee(&throughputs);
    let knee = verdict.index();
    println!(
        "knee ({}): {} clients at {:.1} jobs/s (queue-wait p95 {}ns, wire-rtt p95 {}ns at saturation)",
        verdict.kind(),
        stages[knee].clients,
        stages[knee].jobs_per_sec,
        queue_wait.p95(),
        rtt.p95()
    );
    records.push(BenchRecord {
        name: "load/knee_clients".into(),
        ns_per_op: stages[knee].clients as f64,
        ops_per_sec: stages[knee].jobs_per_sec,
    });
    records.push(BenchRecord::from_ns(
        "load/knee_ns_per_job",
        stages[knee].ns_per_job,
    ));
    records.push(BenchRecord::from_ns(
        "load/saturation_queue_wait_p95",
        queue_wait.p95() as f64,
    ));
    records.push(BenchRecord::from_ns(
        "load/saturation_wire_rtt_p95",
        rtt.p95() as f64,
    ));

    let path = bench_artifact_path("BENCH_load.json");
    write_bench_json(&path, "load", &records).expect("write BENCH_load.json");
    println!("wrote {}", path.display());

    // The saturation snapshot itself rides along as a text artifact
    // (quick mode redirects it like the JSON, and for the same reason).
    let snap_name = if quick {
        "BENCH_load_metrics.quick.txt"
    } else {
        "BENCH_load_metrics.txt"
    };
    let snap_path = workspace_root().join(snap_name);
    std::fs::write(&snap_path, snapshot.render_text()).expect("write metrics snapshot");
    println!("wrote {}", snap_path.display());
}
