//! Pool front-end benchmarks: what the queue/ticket layer costs, and what
//! sharding over several pools buys.
//!
//! ```text
//! cargo bench -p bench --bench frontend_throughput
//! ```
//!
//! Three claims measured, written to `BENCH_frontend.json`:
//!
//! 1. **Queue-layer overhead.** The same 32-input squid session through a
//!    bare [`ReplicaPool::run_batch`] (the `BENCH_pool.json`
//!    `batch32/pool` floor) vs. through a 1-pool [`PoolFrontend`] —
//!    identical replica executions, so the delta is purely the bounded
//!    queue, the driver thread, and the ticket handshake. The acceptance
//!    bar is ~1.0x: the front door must not tax the pool.
//! 2. **Pool sharding.** The same session through 2- and 4-pool
//!    front-ends (total inputs unchanged, spread round-robin). On
//!    multi-core hardware this is the scaling axis; on a 1-CPU container
//!    it can only measure the extra thread traffic — see the `env/cores`
//!    record and the ROADMAP caveat before reading anything into it.
//! 3. **Concurrent submitters.** Four client threads each submitting
//!    their own session slice (`multi_client_sessions`) against a 2-pool
//!    front-end — the MPMC path with real contention, reported as
//!    µs/input end-to-end.

use criterion::{criterion_group, criterion_main, Criterion};

use bench::{bench_artifact_path, write_bench_json, BenchRecord};
use exterminator::frontend::{FrontendConfig, PoolFrontend};
use exterminator::pool::{PoolConfig, ReplicaPool};
use xt_patch::PatchTable;
use xt_workloads::{multi_client_sessions, server_session, SquidLike, WorkloadInput};

/// Inputs per measured iteration (matches `replica_pool`'s batch).
const BATCH: usize = 32;

/// Replicas per pool (the paper's deployment count).
const REPLICAS: usize = 3;

/// Requests per batch input (matches `replica_pool`).
const REQUESTS: usize = 6;

/// Concurrent submitter threads for the MPMC case.
const SUBMITTERS: usize = 4;

fn session() -> Vec<WorkloadInput> {
    server_session(BATCH, REQUESTS, None)
}

fn pool_config() -> PoolConfig {
    PoolConfig {
        replicas: REPLICAS,
        ..PoolConfig::default()
    }
}

fn frontend_config(pools: usize) -> FrontendConfig {
    FrontendConfig {
        pools,
        pool: pool_config(),
        ..FrontendConfig::default()
    }
}

fn throughput(c: &mut Criterion) {
    let workload = SquidLike::new();
    let inputs = session();
    let mut group = c.benchmark_group("frontend");
    group.sample_size(10);

    // The floor: a bare pool driven by its owner thread (the
    // `BENCH_pool.json` configuration).
    std::thread::scope(|scope| {
        let mut pool = ReplicaPool::scoped(scope, &workload, pool_config(), PatchTable::new());
        group.bench_function("batch32_pool_direct", |b| {
            b.iter(|| {
                let outcomes = pool.run_batch(&inputs, None);
                assert!(outcomes.iter().all(|o| o.outcome.vote.unanimous()));
            });
        });
        pool.shutdown();
    });

    // The same executions through the front door, at 1/2/4 pools.
    for pools in [1usize, 2, 4] {
        std::thread::scope(|scope| {
            let frontend =
                PoolFrontend::scoped(scope, &workload, frontend_config(pools), PatchTable::new());
            group.bench_function(format!("batch32_frontend_k{pools}"), |b| {
                b.iter(|| {
                    let outcomes = frontend.run_all(&inputs, None);
                    assert!(outcomes.iter().all(|o| o.outcome.vote.unanimous()));
                });
            });
            frontend.shutdown();
        });
    }

    // MPMC: concurrent submitters with their own sessions (8 inputs each,
    // 32 total per iteration).
    let sessions = multi_client_sessions(SUBMITTERS, BATCH / SUBMITTERS, REQUESTS, None);
    std::thread::scope(|scope| {
        let frontend =
            PoolFrontend::scoped(scope, &workload, frontend_config(2), PatchTable::new());
        group.bench_function("batch32_concurrent_submitters_k2", |b| {
            b.iter(|| {
                std::thread::scope(|clients| {
                    for client_session in &sessions {
                        let frontend = &frontend;
                        clients.spawn(move || {
                            for input in client_session {
                                let out = frontend.submit(input, None).wait();
                                assert!(out.outcome.vote.unanimous());
                            }
                        });
                    }
                });
            });
        });
        frontend.shutdown();
    });
    group.finish();
}

fn emit_json(c: &mut Criterion) {
    let find = |id: String| c.results().iter().find(|r| r.id == id).map(|r| r.min_ns);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut records = Vec::new();
    // Environment record: the k>1 and concurrent series are only
    // meaningful relative to this core count (same caveat as
    // BENCH_fleet.json).
    records.push(BenchRecord {
        name: "env/cores".into(),
        ns_per_op: cores as f64,
        ops_per_sec: 0.0,
    });
    println!("host cores: {cores}");

    let per_input = |ns_iter: f64| ns_iter / BATCH as f64;
    let direct = find("frontend/batch32_pool_direct".into()).map(per_input);
    if let Some(direct) = direct {
        println!(
            "pool direct: {:.0} µs/input (the BENCH_pool floor)",
            direct / 1e3
        );
        records.push(BenchRecord::from_ns("batch32/pool_direct", direct));
    }
    for pools in [1usize, 2, 4] {
        let Some(ns) = find(format!("frontend/batch32_frontend_k{pools}")).map(per_input) else {
            continue;
        };
        println!("frontend k={pools}: {:.0} µs/input", ns / 1e3);
        records.push(BenchRecord::from_ns(
            format!("batch32/frontend_k{pools}"),
            ns,
        ));
        if let (1, Some(direct)) = (pools, direct) {
            // The acceptance ratio: <= ~1.0x means the queue layer is
            // free relative to the bare pool.
            let overhead = ns / direct;
            println!("queue-layer overhead (k=1 vs direct): {overhead:.3}x");
            records.push(BenchRecord {
                name: "batch32/frontend_overhead_vs_pool".into(),
                ns_per_op: overhead,
                ops_per_sec: 0.0,
            });
        }
    }
    if let Some(ns) = find("frontend/batch32_concurrent_submitters_k2".into()).map(per_input) {
        println!(
            "concurrent submitters ({SUBMITTERS} threads, k=2): {:.0} µs/input",
            ns / 1e3
        );
        records.push(BenchRecord::from_ns("batch32/concurrent_submitters_k2", ns));
    }

    let path = bench_artifact_path("BENCH_frontend.json");
    write_bench_json(&path, "frontend_throughput", &records).expect("write BENCH_frontend.json");
    println!("wrote {}", path.display());
}

criterion_group!(benches, throughput, emit_json);
criterion_main!(benches);
