//! Isolation-cost benchmarks: heap-image capture, serialization, and the
//! two isolation algorithm families — the paper's "post-mortem" costs.
//!
//! ```text
//! cargo bench -p bench --bench isolation_speed
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use xt_alloc::{Heap, Rng, SiteHash};
use xt_diefast::{DieFastConfig, DieFastHeap};
use xt_image::HeapImage;
use xt_isolate::cumulative::summarize_run;
use xt_isolate::iterative::isolate;

fn scripted_heap(seed: u64, steps: usize) -> DieFastHeap {
    let mut h = DieFastHeap::new(
        DieFastConfig::with_seed(seed)
            .heap(xt_diehard::DieHardConfig::with_seed(seed).track_history(true)),
    );
    let mut script = Rng::new(4242);
    let mut live = Vec::new();
    for step in 0..steps {
        if !live.is_empty() && script.chance(0.45) {
            let v: xt_arena::Addr = live.swap_remove(script.below_usize(live.len()));
            h.free(v, SiteHash::from_raw(0xF));
        } else {
            let size = 16 + script.below_usize(120);
            live.push(
                h.malloc(size, SiteHash::from_raw(step as u32 % 19))
                    .unwrap(),
            );
        }
    }
    h
}

fn isolation(c: &mut Criterion) {
    let mut group = c.benchmark_group("isolation");
    for steps in [200usize, 800] {
        let heaps: Vec<DieFastHeap> = (0..3).map(|i| scripted_heap(i, steps)).collect();
        let images: Vec<HeapImage> = heaps.iter().map(HeapImage::capture).collect();

        group.bench_with_input(BenchmarkId::new("capture", steps), &steps, |b, _| {
            b.iter(|| HeapImage::capture(&heaps[0]));
        });
        group.bench_with_input(BenchmarkId::new("encode", steps), &steps, |b, _| {
            b.iter(|| images[0].to_bytes());
        });
        let bytes = images[0].to_bytes();
        group.bench_with_input(BenchmarkId::new("decode", steps), &steps, |b, _| {
            b.iter(|| HeapImage::from_bytes(&bytes).unwrap());
        });
        group.bench_with_input(
            BenchmarkId::new("iterative_isolate_k3", steps),
            &steps,
            |b, _| {
                b.iter(|| isolate(&images).unwrap());
            },
        );
        let log = heaps[0].inner().history().unwrap();
        group.bench_with_input(
            BenchmarkId::new("cumulative_summary", steps),
            &steps,
            |b, _| {
                b.iter(|| summarize_run(&images[0], log, true, 0.5));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, isolation);
criterion_main!(benches);
