//! Persistent replica-pool benchmarks.
//!
//! ```text
//! cargo bench -p bench --bench replica_pool
//! ```
//!
//! Two claims measured, both written to `BENCH_pool.json`:
//!
//! 1. **Batched pool vs. spawn-per-call.** A 32-input batch through one
//!    long-lived [`ReplicaPool`] (threads and arenas reused, inputs
//!    pipelined) against 32 separate `run_replicated` calls (each
//!    spawning and tearing down the whole replica set). The pool's win is
//!    pure overhead removal — both run identical replica executions.
//! 2. **Early-exit streaming vote vs. full barrier.** With one replica
//!    made a deterministic straggler, the time to the streaming quorum
//!    verdict vs. the time to full completion of all replicas. The
//!    paper's voter releases output at quorum (§3.1); this measures what
//!    that buys when a replica is slow.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use bench::{bench_artifact_path, write_bench_json, BenchRecord};
use exterminator::pool::{PoolConfig, ReplicaPool, Straggler};
use exterminator::replicated::{run_replicated, ReplicatedConfig};
use xt_patch::PatchTable;
use xt_workloads::{server_session, SquidLike, WorkloadInput};

/// Inputs per batch (the acceptance case).
const BATCH: usize = 32;

/// Replicas (the paper's deployment count).
const REPLICAS: usize = 3;

/// Requests per batch input — a light per-input load, as a request-serving
/// deployment would see, so the fixed per-input costs the pool removes are
/// visible rather than drowned.
const REQUESTS: usize = 6;

/// The straggler's injected delay.
const STRAGGLE: Duration = Duration::from_millis(25);

fn session() -> Vec<WorkloadInput> {
    server_session(BATCH, REQUESTS, None)
}

fn batch_throughput(c: &mut Criterion) {
    let workload = SquidLike::new();
    let inputs = session();
    let mut group = c.benchmark_group("pool");
    group.sample_size(10);

    // Spawn-per-call baseline: the pre-pool `run_replicated` shape — a
    // fresh replica set (threads + allocator stacks + page tables) per
    // input.
    let config = ReplicatedConfig {
        replicas: REPLICAS,
        ..ReplicatedConfig::default()
    };
    group.bench_function("batch32_spawn_per_call", |b| {
        b.iter(|| {
            for input in &inputs {
                let out = run_replicated(&workload, input, None, &PatchTable::new(), &config);
                assert!(out.vote.unanimous(), "bench inputs are clean");
            }
        });
    });

    // Persistent pool: same executions, one setup, pipelined broadcast.
    std::thread::scope(|scope| {
        let mut pool = ReplicaPool::scoped(
            scope,
            &workload,
            PoolConfig {
                replicas: REPLICAS,
                ..PoolConfig::default()
            },
            PatchTable::new(),
        );
        group.bench_function("batch32_pool", |b| {
            b.iter(|| {
                let outcomes = pool.run_batch(&inputs, None);
                assert!(outcomes.iter().all(|o| o.outcome.vote.unanimous()));
            });
        });
        pool.shutdown();
    });
    group.finish();
}

/// Early-exit vote: measured directly from [`VoteTiming`] (criterion
/// cannot see inside one submission), median over a handful of
/// submissions on a persistent pool with an injected straggler.
fn straggler_vote_latency() -> (f64, f64, f64) {
    let workload = SquidLike::new();
    let input = &session()[0];
    let samples = if criterion::quick_mode() { 3 } else { 9 };
    let mut verdicts = Vec::new();
    let mut fulls = Vec::new();
    let mut outstanding = Vec::new();
    std::thread::scope(|scope| {
        let mut pool = ReplicaPool::scoped(
            scope,
            &workload,
            PoolConfig {
                replicas: REPLICAS,
                straggler: Some(Straggler {
                    replica: REPLICAS - 1,
                    delay: STRAGGLE,
                }),
                ..PoolConfig::default()
            },
            PatchTable::new(),
        );
        for _ in 0..samples {
            let out = pool.run_one(input, None);
            assert!(out.outcome.vote.unanimous());
            verdicts.push(out.timing.verdict_latency.as_nanos() as f64);
            fulls.push(out.timing.full_latency.as_nanos() as f64);
            outstanding.push(out.timing.outstanding_at_verdict as f64);
        }
        pool.shutdown();
    });
    let median = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        v[v.len() / 2]
    };
    (
        median(&mut verdicts),
        median(&mut fulls),
        median(&mut outstanding),
    )
}

fn emit_json(c: &mut Criterion) {
    let find = |id: &str| c.results().iter().find(|r| r.id == id).map(|r| r.min_ns);
    let mut records = Vec::new();

    let spawn = find("pool/batch32_spawn_per_call");
    let pooled = find("pool/batch32_pool");
    if let (Some(spawn), Some(pooled)) = (spawn, pooled) {
        let spawn_per_input = spawn / BATCH as f64;
        let pooled_per_input = pooled / BATCH as f64;
        let speedup = spawn_per_input / pooled_per_input;
        println!(
            "batch of {BATCH}: spawn-per-call {:.0} µs/input, pool {:.0} µs/input, speedup {speedup:.2}x",
            spawn_per_input / 1e3,
            pooled_per_input / 1e3,
        );
        records.push(BenchRecord::from_ns(
            "batch32/spawn_per_call",
            spawn_per_input,
        ));
        records.push(BenchRecord::from_ns("batch32/pool", pooled_per_input));
        // Schema-uniform speedup record: the ratio rides in ns_per_op.
        records.push(BenchRecord {
            name: "batch32/speedup_pool_vs_spawn".into(),
            ns_per_op: speedup,
            ops_per_sec: 0.0,
        });
    }

    let (verdict_ns, full_ns, outstanding) = straggler_vote_latency();
    println!(
        "straggler case: verdict after {:.2} ms, all replicas after {:.2} ms ({} outstanding at verdict)",
        verdict_ns / 1e6,
        full_ns / 1e6,
        outstanding,
    );
    records.push(BenchRecord::from_ns(
        "straggler/verdict_latency",
        verdict_ns,
    ));
    records.push(BenchRecord::from_ns("straggler/full_latency", full_ns));
    records.push(BenchRecord {
        name: "straggler/outstanding_at_verdict".into(),
        ns_per_op: outstanding,
        ops_per_sec: 0.0,
    });
    records.push(BenchRecord {
        name: "straggler/verdict_before_completion".into(),
        ns_per_op: f64::from(u8::from(verdict_ns < full_ns && outstanding >= 1.0)),
        ops_per_sec: 0.0,
    });

    let path = bench_artifact_path("BENCH_pool.json");
    write_bench_json(&path, "replica_pool", &records).expect("write BENCH_pool.json");
    println!("wrote {}", path.display());
}

criterion_group!(benches, batch_throughput, emit_json);
criterion_main!(benches);
