//! Connection soak: hold thousands of mostly-idle connections on one
//! event-loop [`NetFrontend`] and measure epoch push propagation.
//!
//! ```text
//! cargo bench -p bench --bench soak
//! ```
//!
//! The thread-per-connection server this harness retired would need one
//! OS thread (8 MiB of stack address space and a scheduler entry) per
//! held connection; the readiness-driven loop holds them all on one
//! poller thread plus a fixed worker pool. This bench *asserts* that
//! shape rather than trusting it:
//!
//! 1. **Fixed-size thread pool.** The process thread count after
//!    accepting every connection equals the count right after bind —
//!    zero threads per connection, at 1k (quick) and 10k (full) alike.
//! 2. **Bounded memory.** Resident-set growth divided by the connection
//!    count stays under a per-connection budget (buffered reader/writer
//!    pairs on the client side dominate; the server's per-connection
//!    state is a token, empty buffers, and an epoll registration).
//! 3. **Determinism at full occupancy.** With every connection held
//!    open, concurrently submitted jobs still produce digests
//!    byte-identical to the in-process serial replay in arrival order.
//! 4. **Observability at full occupancy.** A live metrics pull answers
//!    while every slot is occupied, and the `net/epoch_push` histogram
//!    carries one propagation sample per pushed connection.
//!
//! The headline series — publish → *last* client observes, across the
//! whole population via [`NetClient::wait_pushed_epoch`] — merges into
//! `BENCH_net.json` next to the request/reply numbers (quick mode: the
//! git-ignored `.quick.json` sibling). 1-CPU caveat (`env/cores`): on
//! one core the propagation total is serialized behind the poller and
//! the measuring loop itself; read it against the recorded core count.
//!
//! The full-mode population also bows to the process fd budget: both
//! socket ends live in this one process (2 fds per connection), so the
//! target is clamped to fit `RLIMIT_NOFILE` and the clamp is printed
//! and recorded (`soak/target_connections` vs `soak/connections`).

use std::sync::Mutex;
use std::time::{Duration, Instant};

use bench::{bench_artifact_path, merge_bench_json, BenchRecord};
use exterminator::frontend::FrontendConfig;
use exterminator::pool::PoolConfig;
use xt_fleet::{FleetConfig, RunReport};
use xt_net::{NetClient, NetConfig, NetFrontend};
use xt_patch::PatchTable;
use xt_workloads::{SquidLike, WorkloadInput};

/// Pool shape for the soak server and the serial reference. Determinism
/// pins must exclude auto-patching (patch visibility is
/// completion-order dependent; same exclusion as `xt-net/tests/net.rs`).
fn pool_config() -> PoolConfig {
    PoolConfig {
        replicas: 3,
        auto_patch: false,
        ..PoolConfig::default()
    }
}

fn net_config(max_connections: usize) -> NetConfig {
    NetConfig {
        frontend: FrontendConfig {
            pools: 1,
            pool: pool_config(),
            queue_capacity: 3,
            share_isolated: false,
            ..FrontendConfig::default()
        },
        // publish_every 0: the harness publishes explicitly, so the
        // propagation clock starts exactly at the publish call.
        fleet: FleetConfig {
            shards: 4,
            publish_every: 0,
            ..FleetConfig::default()
        },
        max_connections,
        ..NetConfig::default()
    }
}

/// Evidence aimed at one site — 16 of these flag it, so the explicit
/// publish below mints a non-genesis epoch (same recipe as the net
/// integration pins).
fn site_report(seq: u32) -> RunReport {
    RunReport {
        client: 11,
        seq,
        failed: true,
        clock: 50 + u64::from(seq),
        n_sites: 100,
        dangling_obs: vec![(0xD00D, 0.5, true)],
        overflow_obs: Vec::new(),
        pad_hints: Vec::new(),
        defer_hints: vec![(0xD00D, 0xF, 30)],
    }
}

/// A numeric field from `/proc/self/status` (`Threads`, `VmRSS` in KiB).
fn proc_status(field: &str) -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = text.lines().find(|l| l.starts_with(field))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// The soft open-file limit, from `/proc/self/limits`.
fn fd_soft_limit() -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/limits").ok()?;
    let line = text.lines().find(|l| l.starts_with("Max open files"))?;
    line.split_whitespace().nth(3)?.parse().ok()
}

/// In-process serial reference digests for `inputs` in order.
fn serial_digests(inputs: &[WorkloadInput]) -> Vec<u128> {
    let workload = SquidLike::new();
    std::thread::scope(|scope| {
        let mut pool = exterminator::pool::ReplicaPool::scoped(
            scope,
            &workload,
            pool_config(),
            PatchTable::new(),
        );
        let outcomes = pool.run_batch(inputs, None);
        pool.shutdown();
        outcomes
            .iter()
            .map(exterminator::pool::PoolOutcome::deterministic_digest)
            .collect()
    })
}

/// Per-connection RSS growth budget: a held-open idle connection costs
/// two buffered stream wrappers client-side plus a few hundred bytes of
/// server state — 128 KiB is an order of magnitude of headroom, while a
/// thread-per-connection server would blow it on stack pages alone.
const RSS_PER_CONN_BUDGET: u64 = 128 * 1024;

fn main() {
    let quick = criterion::quick_mode();
    let target: usize = if quick { 1_000 } else { 10_000 };
    // Both socket ends are this process: 2 fds per connection, plus
    // slack for the listener, the poller, and everything else open.
    let budget = fd_soft_limit().map_or(target, |limit| (limit.saturating_sub(256) / 2) as usize);
    let conns = target.min(budget);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("# soak: {conns} connections (target {target}), {cores} cores\n");

    let server = NetFrontend::bind(SquidLike::new(), "127.0.0.1:0", net_config(conns + 8))
        .expect("bind localhost");
    let addr = server.local_addr();
    // One round trip proves the loop, workers, and watcher are all up;
    // the thread count is the fixed-pool baseline from here on.
    let probe = NetClient::connect(addr).expect("connect probe");
    assert!(probe.pull_health().expect("health pull").healthy);
    let threads_baseline = proc_status("Threads").expect("/proc/self/status");
    let rss_baseline = proc_status("VmRSS").expect("/proc/self/status");

    let connect_started = Instant::now();
    let clients: Vec<NetClient> = (0..conns)
        .map(|i| {
            // A tight connect loop can outrun the accept loop on few
            // cores and overflow the listen backlog — at which point
            // the kernel drops SYNs and every stalled connect eats a
            // ~1s retransmission timeout. Yielding once per backlog's
            // worth keeps the poller draining instead.
            if i % 64 == 63 {
                std::thread::yield_now();
            }
            NetClient::connect(addr).unwrap_or_else(|e| panic!("connect #{i}: {e:?}"))
        })
        .collect();
    let connect_ns_per_conn = connect_started.elapsed().as_nanos() as f64 / conns as f64;
    println!(
        "held {conns} connections in {:.2}s ({:.0} ns/conn)",
        connect_started.elapsed().as_secs_f64(),
        connect_ns_per_conn
    );

    // Pin 1: fixed-size thread pool — no thread came with any connection.
    let threads_full = proc_status("Threads").expect("/proc/self/status");
    assert_eq!(
        threads_full, threads_baseline,
        "holding {conns} connections changed the thread count"
    );

    // Pin 2: bounded memory. (Client-side stream buffers dominate; the
    // budget still catches anything per-connection that grows.)
    let rss_full = proc_status("VmRSS").expect("/proc/self/status");
    let rss_per_conn = rss_full.saturating_sub(rss_baseline) * 1024 / conns as u64;
    println!(
        "rss: {} KiB -> {} KiB ({} bytes/conn), threads: {threads_full}",
        rss_baseline, rss_full, rss_per_conn
    );
    assert!(
        rss_per_conn < RSS_PER_CONN_BUDGET,
        "{rss_per_conn} bytes/conn busts the {RSS_PER_CONN_BUDGET}-byte budget"
    );

    // Pin 3: determinism at full occupancy — concurrent submissions over
    // 3 of the held connections, against the serial in-process replay.
    let collected: Mutex<Vec<(u64, WorkloadInput, u128)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for (c, client) in clients.iter().take(3).enumerate() {
            let collected = &collected;
            scope.spawn(move || {
                for j in 0..4 {
                    let input = WorkloadInput::with_seed((c * 4 + j) as u64);
                    let ticket = client.submit(&input, None).expect("submit");
                    let seq = ticket.job();
                    let outcome = ticket.wait().expect("outcome");
                    assert!(outcome.unanimous, "soak traffic diverged");
                    collected
                        .lock()
                        .expect("collection lock")
                        .push((seq, input, outcome.digest));
                }
            });
        }
    });
    let mut collected = collected.into_inner().expect("collection lock");
    collected.sort_by_key(|(seq, _, _)| *seq);
    for (i, (seq, _, _)) in collected.iter().enumerate() {
        assert_eq!(*seq, i as u64, "sequence numbers have gaps at occupancy");
    }
    let arrival: Vec<WorkloadInput> = collected.iter().map(|(_, i, _)| i.clone()).collect();
    for ((seq, _, digest), expected) in collected.iter().zip(&serial_digests(&arrival)) {
        assert_eq!(
            digest, expected,
            "job {seq} diverged from the serial reference at full occupancy"
        );
    }
    println!(
        "determinism pin: {} occupied-server outcomes byte-identical to the serial reference",
        collected.len()
    );

    // The headline: publish → last client observes, across the whole
    // population. Evidence first (no cadence), then the explicit publish
    // starts the clock.
    for seq in 0..16 {
        probe.ingest_report(&site_report(seq)).expect("report ack");
    }
    let published = Instant::now();
    let epoch = server.service().publish();
    assert!(epoch.number >= 1, "evidence never minted an epoch");
    for (i, client) in clients.iter().enumerate() {
        client
            .wait_pushed_epoch(0, Duration::from_secs(60))
            .expect("wait for push")
            .unwrap_or_else(|| panic!("connection #{i} never observed the pushed epoch"));
    }
    let propagation = published.elapsed();
    let propagation_ns = propagation.as_nanos() as f64;
    println!(
        "epoch push: {conns} connections observed epoch {} in {:.1} ms ({:.0} ns/conn)",
        epoch.number,
        propagation.as_secs_f64() * 1e3,
        propagation_ns / conns as f64
    );

    // Pin 4: a live metrics pull at full occupancy, carrying one
    // propagation sample per pushed connection.
    let snapshot = probe.pull_metrics().expect("metrics pull at occupancy");
    let push_hist = snapshot
        .histogram("net/epoch_push")
        .expect("net/epoch_push");
    assert!(
        push_hist.count() >= conns as u64,
        "epoch_push carried {} samples for {conns} connections",
        push_hist.count()
    );
    assert_eq!(
        snapshot.counter("net/pushes_dropped"),
        Some(0),
        "idle connections hit the write-queue hard cap"
    );
    let health = probe.pull_health().expect("health pull at occupancy");
    assert!(health.connections as usize > conns, "population miscounted");

    drop(clients);
    drop(probe);
    server.shutdown();

    let records = vec![
        BenchRecord {
            name: "env/cores".into(),
            ns_per_op: cores as f64,
            ops_per_sec: 0.0,
        },
        BenchRecord {
            name: "soak/connections".into(),
            ns_per_op: conns as f64,
            ops_per_sec: 0.0,
        },
        BenchRecord {
            name: "soak/target_connections".into(),
            ns_per_op: target as f64,
            ops_per_sec: 0.0,
        },
        BenchRecord::from_ns("soak/connect_ns_per_conn", connect_ns_per_conn),
        BenchRecord::from_ns("soak/epoch_propagation_total", propagation_ns),
        BenchRecord::from_ns(
            "soak/epoch_propagation_per_conn",
            propagation_ns / conns as f64,
        ),
        BenchRecord {
            name: "soak/rss_bytes_per_conn".into(),
            ns_per_op: rss_per_conn as f64,
            ops_per_sec: 0.0,
        },
        BenchRecord {
            name: "soak/threads".into(),
            ns_per_op: threads_full as f64,
            ops_per_sec: 0.0,
        },
    ];
    let path = bench_artifact_path("BENCH_net.json");
    merge_bench_json(&path, "net", &records).expect("merge BENCH_net.json");
    println!("merged soak series into {}", path.display());
}
