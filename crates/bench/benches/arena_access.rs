//! Arena access-path microbenchmarks: the page-table/TLB arena against a
//! faithful replica of the original `BTreeMap`-based arena, across
//! hit-heavy, miss-heavy, and many-region access patterns plus the bulk
//! canary fill/check operations.
//!
//! ```text
//! cargo bench -p bench --bench arena_access
//! ```
//!
//! Besides the usual criterion table, this bench writes `BENCH_arena.json`
//! at the workspace root with per-case ns/op for both implementations and
//! their speedups, so future PRs have a perf trajectory to compare
//! against.

use std::cell::Cell;
use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench::{bench_artifact_path, write_bench_json, BenchRecord};
use xt_alloc::{Heap as _, SiteHash};
use xt_arena::{Addr, Arena, Rng, PAGE_SIZE};
use xt_diefast::{DieFastConfig, DieFastHeap};
use xt_image::HeapImage;

/// Accesses per benchmark iteration (so ns/op can be recovered from the
/// per-iteration medians).
const OPS: usize = 4096;

/// Live regions in the many-region cases — representative of a DieHard
/// heap's miniheap count, and far beyond the old arena's single-entry
/// translation cache.
const REGIONS: usize = 64;

/// The minimal memory interface both arenas expose, so every case runs
/// the identical script against each implementation.
trait Mem: Default {
    fn map(&mut self, len: usize, rng: &mut Rng) -> Addr;
    fn unmap(&mut self, base: Addr);
    fn read_u64(&self, addr: Addr) -> u64;
    fn write_u64(&mut self, addr: Addr, value: u64);
    fn fill_pattern(&mut self, addr: Addr, len: usize, pattern: u32);
    /// Offset of the first byte differing from the repeating pattern.
    fn check_pattern(&self, addr: Addr, len: usize, pattern: u32) -> Option<usize>;
}

impl Mem for Arena {
    fn map(&mut self, len: usize, rng: &mut Rng) -> Addr {
        Arena::map(self, len, rng)
    }

    fn unmap(&mut self, base: Addr) {
        Arena::unmap(self, base).expect("benchmark unmaps live regions");
    }

    fn read_u64(&self, addr: Addr) -> u64 {
        Arena::read_u64(self, addr).expect("benchmark reads mapped memory")
    }

    fn write_u64(&mut self, addr: Addr, value: u64) {
        Arena::write_u64(self, addr, value).expect("benchmark writes mapped memory")
    }

    fn fill_pattern(&mut self, addr: Addr, len: usize, pattern: u32) {
        self.fill_pattern_u32(addr, len, pattern)
            .expect("benchmark fills mapped memory");
    }

    fn check_pattern(&self, addr: Addr, len: usize, pattern: u32) -> Option<usize> {
        self.compare_pattern(addr, len, pattern)
            .expect("benchmark checks mapped memory")
    }
}

/// A faithful replica of the pre-page-table arena: regions in a
/// `BTreeMap`, every access a range query softened by a single-entry
/// cache that any `unmap` flushes whole, and byte-at-a-time pattern
/// fill/check (what DieFast canary work used to cost).
#[derive(Default)]
struct BtreeArena {
    regions: BTreeMap<u64, Vec<u8>>,
    last_region: Cell<(u64, u64)>,
}

impl BtreeArena {
    fn locate(&self, addr: Addr, len: usize) -> (u64, usize) {
        let raw = addr.get();
        let (cached_base, cached_end) = self.last_region.get();
        if raw >= cached_base && raw + len as u64 <= cached_end {
            return (cached_base, (raw - cached_base) as usize);
        }
        let (&start, data) = self
            .regions
            .range(..=raw)
            .next_back()
            .expect("benchmark accesses mapped memory");
        let off = (raw - start) as usize;
        assert!(off + len <= data.len(), "benchmark access in bounds");
        self.last_region.set((start, start + data.len() as u64));
        (start, off)
    }
}

impl Mem for BtreeArena {
    fn map(&mut self, len: usize, rng: &mut Rng) -> Addr {
        let len = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        loop {
            let base = 0x1000_0000 + rng.below(1 << 30) * PAGE_SIZE as u64;
            let lo = base - PAGE_SIZE as u64;
            let hi = base + len as u64 + PAGE_SIZE as u64;
            let free = match self.regions.range(..hi).next_back() {
                Some((&start, data)) => start + data.len() as u64 <= lo,
                None => true,
            };
            if free {
                self.regions.insert(base, vec![0u8; len]);
                return Addr::new(base);
            }
        }
    }

    fn unmap(&mut self, base: Addr) {
        // The original behaviour under test: any unmap poisons the cache.
        self.last_region.set((0, 0));
        self.regions.remove(&base.get());
    }

    fn read_u64(&self, addr: Addr) -> u64 {
        let (start, off) = self.locate(addr, 8);
        let b = &self.regions[&start][off..off + 8];
        u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    fn write_u64(&mut self, addr: Addr, value: u64) {
        let (start, off) = self.locate(addr, 8);
        let data = self.regions.get_mut(&start).expect("located region");
        data[off..off + 8].copy_from_slice(&value.to_le_bytes());
    }

    fn fill_pattern(&mut self, addr: Addr, len: usize, pattern: u32) {
        let (start, off) = self.locate(addr, len);
        let data = self.regions.get_mut(&start).expect("located region");
        let bytes = pattern.to_le_bytes();
        for (i, slot) in data[off..off + len].iter_mut().enumerate() {
            *slot = bytes[i % 4];
        }
    }

    fn check_pattern(&self, addr: Addr, len: usize, pattern: u32) -> Option<usize> {
        let (start, off) = self.locate(addr, len);
        let bytes = &self.regions[&start][off..off + len];
        let pat = pattern.to_le_bytes();
        bytes
            .iter()
            .enumerate()
            .find_map(|(i, &b)| if b == pat[i % 4] { None } else { Some(i) })
    }
}

fn setup<M: Mem>(n_regions: usize, pages_each: usize) -> (M, Vec<Addr>) {
    let mut mem = M::default();
    let mut rng = Rng::new(0xA11E);
    let bases: Vec<Addr> = (0..n_regions)
        .map(|_| mem.map(pages_each * PAGE_SIZE, &mut rng))
        .collect();
    (mem, bases)
}

/// Hit-heavy: every access lands in one hot region, the case the old
/// single-entry cache already served well.
fn run_hit_heavy<M: Mem>(mem: &mut M, base: Addr) {
    let mut acc = 0u64;
    for i in 0..OPS as u64 {
        let addr = base + (i % 500) * 8;
        if i % 4 == 0 {
            mem.write_u64(addr, i ^ acc);
        } else {
            acc ^= mem.read_u64(addr);
        }
    }
    std::hint::black_box(acc);
}

/// Many-region mixed read/write: accesses cycle through all regions, the
/// pattern DieFast's cross-miniheap canary checks produce. The old cache
/// missed almost every access here.
fn run_many_region_mixed<M: Mem>(mem: &mut M, bases: &[Addr]) {
    let mut acc = 0u64;
    for i in 0..OPS as u64 {
        let addr = bases[i as usize % bases.len()] + (i % 256) * 8;
        if i % 3 == 0 {
            mem.write_u64(addr, i);
        } else {
            acc ^= mem.read_u64(addr);
        }
    }
    std::hint::black_box(acc);
}

/// Pages per region in the miss-heavy case: 64 regions × 8 pages = 512
/// distinct pages, twice the arena's 256-entry TLB, so the case measures
/// genuine capacity misses (page-table walks), not just conflict misses.
const MISS_PAGES: usize = 8;

/// Miss-heavy: strides across more distinct pages than the TLB holds, plus
/// periodic unmap/remap churn — the worst case for both translation
/// schemes, and the one where the old design also paid whole-cache
/// flushes.
fn run_miss_heavy<M: Mem>(mem: &mut M, bases: &mut [Addr], rng: &mut Rng) {
    let mut acc = 0u64;
    for i in 0..OPS as u64 {
        let r = i as usize % bases.len();
        // Walk every page of every region so the working set overflows
        // the TLB and most accesses pay a table walk.
        let addr = bases[r] + (i % MISS_PAGES as u64) * PAGE_SIZE as u64 + (i % 32) * 8;
        acc ^= mem.read_u64(addr);
        if i % 64 == 63 {
            mem.unmap(bases[r]);
            bases[r] = mem.map(MISS_PAGES * PAGE_SIZE, rng);
        }
    }
    std::hint::black_box(acc);
}

/// Bulk canary fill over whole pages (DieFast `free` at p = 1).
fn run_bulk_fill<M: Mem>(mem: &mut M, bases: &[Addr]) {
    for (i, &base) in bases.iter().enumerate() {
        mem.fill_pattern(base, PAGE_SIZE, 0x5A5A_0001 | i as u32);
    }
}

/// Bulk canary check over whole pages (DieFast `malloc`-time probes).
fn run_bulk_compare<M: Mem>(mem: &M, bases: &[Addr]) {
    for (i, &base) in bases.iter().enumerate() {
        assert_eq!(
            mem.check_pattern(base, PAGE_SIZE, 0x5A5A_0001 | i as u32),
            None
        );
    }
}

const CASES: [&str; 5] = [
    "hit_heavy",
    "many_region_mixed",
    "miss_heavy",
    "bulk_fill",
    "bulk_compare",
];

fn bench_impl<M: Mem>(c: &mut Criterion, imp: &str) {
    let mut group = c.benchmark_group("arena_access");
    {
        let (mut mem, bases) = setup::<M>(1, 2);
        group.bench_with_input(BenchmarkId::new("hit_heavy", imp), &(), |b, ()| {
            b.iter(|| run_hit_heavy(&mut mem, bases[0]));
        });
    }
    {
        let (mut mem, bases) = setup::<M>(REGIONS, 2);
        group.bench_with_input(BenchmarkId::new("many_region_mixed", imp), &(), |b, ()| {
            b.iter(|| run_many_region_mixed(&mut mem, &bases));
        });
    }
    {
        let (mut mem, mut bases) = setup::<M>(REGIONS, MISS_PAGES);
        let mut rng = Rng::new(0xBEEF);
        group.bench_with_input(BenchmarkId::new("miss_heavy", imp), &(), |b, ()| {
            b.iter(|| run_miss_heavy(&mut mem, &mut bases, &mut rng));
        });
    }
    {
        let (mut mem, bases) = setup::<M>(REGIONS, 1);
        group.bench_with_input(BenchmarkId::new("bulk_fill", imp), &(), |b, ()| {
            b.iter(|| run_bulk_fill(&mut mem, &bases));
        });
    }
    {
        let (mut mem, bases) = setup::<M>(REGIONS, 1);
        run_bulk_fill(&mut mem, &bases);
        group.bench_with_input(BenchmarkId::new("bulk_compare", imp), &(), |b, ()| {
            b.iter(|| run_bulk_compare(&mem, &bases));
        });
    }
    group.finish();
}

fn arena_access(c: &mut Criterion) {
    bench_impl::<BtreeArena>(c, "btree");
    bench_impl::<Arena>(c, "page_table");
}

/// Slots per region in the capture-gather case (64-byte objects in
/// 4-page miniheap-like regions).
const CAPTURE_SLOT: usize = 64;

/// Heap-image capture's data path, old idiom vs bulk API: one bounds-
/// checked `read_bytes` per slot versus one `region_snapshot` per region
/// sliced per slot. Both run against the page-table arena; the per-op
/// unit is one region captured.
fn capture_gather(c: &mut Criterion) {
    let (mut mem, bases) = setup::<Arena>(REGIONS, 4);
    for &base in &bases {
        Mem::fill_pattern(&mut mem, base, 4 * PAGE_SIZE, 0x1234_5678);
    }
    let mut group = c.benchmark_group("arena_access");
    group.bench_with_input(
        BenchmarkId::new("image_capture", "per_slot"),
        &(),
        |b, ()| {
            b.iter(|| {
                let mut total = 0usize;
                for &base in &bases {
                    for s in 0..4 * PAGE_SIZE / CAPTURE_SLOT {
                        let data = mem
                            .read_bytes(base + (s * CAPTURE_SLOT) as u64, CAPTURE_SLOT)
                            .unwrap()
                            .to_vec();
                        total += data.len();
                    }
                }
                std::hint::black_box(total)
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("image_capture", "snapshot"),
        &(),
        |b, ()| {
            b.iter(|| {
                let mut total = 0usize;
                for &base in &bases {
                    let (_, region) = mem.region_snapshot(base).unwrap();
                    for chunk in region.chunks_exact(CAPTURE_SLOT) {
                        total += chunk.to_vec().len();
                    }
                }
                std::hint::black_box(total)
            });
        },
    );
    group.finish();
}

/// Live objects in the incremental-capture case. 1 KiB objects keep the
/// slot-data bytes (what dirty-page splicing avoids re-reading) dominant
/// over per-slot metadata, the regime real heap images live in.
const INC_OBJECTS: usize = 1024;

/// Objects stored to between captures in the sparse-touch workload — the
/// steady state of continuous capture, where an input touches a small
/// working set of a large heap.
const INC_TOUCHED: usize = 16;

/// Full vs incremental heap-image capture under a sparse-touch workload:
/// each iteration stores to [`INC_TOUCHED`] of [`INC_OBJECTS`] live
/// objects and captures the heap. The full series re-reads every slot;
/// the incremental series diffs against the previous capture via the
/// arena's dirty-page bits and splices untouched slots by `Arc` clone.
/// The per-op unit is one whole-heap capture.
fn capture_incremental(c: &mut Criterion) {
    let build = || {
        let mut heap = DieFastHeap::new(DieFastConfig::with_seed(0xCAFE));
        let objects: Vec<Addr> = (0..INC_OBJECTS)
            .map(|i| {
                let p = heap
                    .malloc(1024, SiteHash::from_raw(i as u32 % 17))
                    .expect("bench heap allocates");
                heap.arena_mut().write_u64(p, i as u64).unwrap();
                p
            })
            .collect();
        (heap, objects)
    };
    let touch = |heap: &mut DieFastHeap, objects: &[Addr], round: u64| {
        for k in 0..INC_TOUCHED as u64 {
            let p = objects[((round * 31 + k * 61) as usize) % objects.len()];
            heap.arena_mut().write_u64(p + 8 * k, round ^ k).unwrap();
        }
    };
    let mut group = c.benchmark_group("arena_access");
    {
        let (mut heap, objects) = build();
        let mut round = 0u64;
        group.bench_with_input(
            BenchmarkId::new("incremental_capture", "full"),
            &(),
            |b, ()| {
                b.iter(|| {
                    round += 1;
                    touch(&mut heap, &objects, round);
                    std::hint::black_box(HeapImage::capture(&heap))
                });
            },
        );
    }
    {
        let (mut heap, objects) = build();
        let mut round = 0u64;
        // Rolling base, exactly how a pool replica uses it: each capture
        // becomes the baseline the next one diffs against.
        let mut base = HeapImage::capture(&heap);
        group.bench_with_input(
            BenchmarkId::new("incremental_capture", "incremental"),
            &(),
            |b, ()| {
                b.iter(|| {
                    round += 1;
                    touch(&mut heap, &objects, round);
                    base = HeapImage::capture_incremental(&base, &heap);
                    std::hint::black_box(base.slots().count())
                });
            },
        );
    }
    group.finish();
}

/// Converts the recorded per-iteration minima (the least-noise statistic
/// under a loaded machine) into ns/op records plus speedups and writes
/// `BENCH_arena.json` at the workspace root.
fn emit_json(c: &mut Criterion) {
    // Each case is normalized by its simulated operations per iteration:
    // the scalar cases run OPS accesses, the bulk cases process REGIONS
    // page-sized fills/checks.
    let ns_per_op = |case: &str, imp: &str| -> Option<f64> {
        let per_iter = match case {
            "bulk_fill" | "bulk_compare" | "image_capture" => REGIONS as f64,
            // One whole-heap capture per iteration.
            "incremental_capture" => 1.0,
            _ => OPS as f64,
        };
        let id = format!("arena_access/{case}/{imp}");
        c.results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.min_ns / per_iter)
    };
    let mut records = Vec::new();
    let mut pairs: Vec<(&str, &str, &str)> =
        CASES.iter().map(|&c| (c, "btree", "page_table")).collect();
    pairs.push(("image_capture", "per_slot", "snapshot"));
    pairs.push(("incremental_capture", "full", "incremental"));
    for (case, old, new) in pairs {
        let (Some(before), Some(after)) = (ns_per_op(case, old), ns_per_op(case, new)) else {
            continue;
        };
        let speedup = before / after;
        records.push(BenchRecord::from_ns(format!("{case}/{old}"), before));
        records.push(BenchRecord::from_ns(format!("{case}/{new}"), after));
        // Schema-uniform speedup record: the ratio rides in ns_per_op.
        records.push(BenchRecord {
            name: format!("{case}/speedup"),
            ns_per_op: speedup,
            ops_per_sec: 0.0,
        });
        println!("{case}: {old} {before:.1} ns/op, {new} {after:.1} ns/op, speedup {speedup:.2}x");
    }
    let path = bench_artifact_path("BENCH_arena.json");
    write_bench_json(&path, "arena_access", &records).expect("write BENCH_arena.json");
    println!("wrote {}", path.display());
}

criterion_group!(
    benches,
    arena_access,
    capture_gather,
    capture_incremental,
    emit_json
);
criterion_main!(benches);
