//! Allocator microbenchmarks: malloc/free throughput per allocator layer,
//! quantifying where Fig. 7's overhead comes from (randomized probing,
//! canary filling/checking, correction table lookups).
//!
//! ```text
//! cargo bench -p bench --bench alloc_micro
//! ```

use criterion::{criterion_group, criterion_main, Criterion};

use xt_alloc::{Heap, SiteHash};
use xt_baseline::BaselineHeap;
use xt_correct::CorrectingHeap;
use xt_diefast::{DieFastConfig, DieFastHeap};
use xt_diehard::{DieHardConfig, DieHardHeap};
use xt_patch::PatchTable;

const SITE: SiteHash = SiteHash::from_raw(0xBE);

fn churn(heap: &mut dyn Heap, n: usize) {
    let mut live = Vec::with_capacity(64);
    for i in 0..n {
        if live.len() >= 64 {
            let victim = live.swap_remove(i % live.len());
            heap.free(victim, SITE);
        }
        live.push(heap.malloc(16 + (i % 4) * 24, SITE).unwrap());
    }
    for p in live {
        heap.free(p, SITE);
    }
}

fn layers(c: &mut Criterion) {
    let mut group = c.benchmark_group("alloc_micro");
    group.bench_function("baseline", |b| {
        b.iter(|| {
            let mut heap = BaselineHeap::with_seed(1);
            churn(&mut heap, 2000);
        });
    });
    group.bench_function("diehard", |b| {
        b.iter(|| {
            let mut heap = DieHardHeap::new(DieHardConfig::with_seed(1));
            churn(&mut heap, 2000);
        });
    });
    group.bench_function("diefast", |b| {
        b.iter(|| {
            let mut heap = DieFastHeap::new(DieFastConfig::with_seed(1));
            churn(&mut heap, 2000);
        });
    });
    group.bench_function("diefast_p_half", |b| {
        b.iter(|| {
            let mut heap = DieFastHeap::new(DieFastConfig::with_seed(1).fill_probability(0.5));
            churn(&mut heap, 2000);
        });
    });
    group.bench_function("full_stack_unpatched", |b| {
        b.iter(|| {
            let inner = DieFastHeap::new(DieFastConfig::with_seed(1));
            let mut heap = CorrectingHeap::new(inner, PatchTable::new());
            churn(&mut heap, 2000);
        });
    });
    group.bench_function("full_stack_patched", |b| {
        let mut patches = PatchTable::new();
        for s in 0..64u32 {
            patches.add_pad(SiteHash::from_raw(s), 8);
        }
        b.iter(|| {
            let inner = DieFastHeap::new(DieFastConfig::with_seed(1));
            let mut heap = CorrectingHeap::new(inner, patches.clone());
            churn(&mut heap, 2000);
        });
    });
    group.finish();
}

criterion_group!(benches, layers);
criterion_main!(benches);
