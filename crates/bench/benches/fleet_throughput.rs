//! Fleet-service ingestion and publication benchmarks.
//!
//! ```text
//! cargo bench -p bench --bench fleet_throughput
//! ```
//!
//! The aggregation side of §5/§6.4: how many client run reports per second
//! one service instance sustains under concurrent submitters, as a
//! function of evidence-shard count (1/4/16), plus the latency of
//! publishing a patch epoch (classify every shard + lattice join), plus
//! the durability cost model (WAL-off vs WAL-on ingest over memory and a
//! real directory, and recovery latency by WAL length vs compacted
//! snapshot). Writes `BENCH_fleet.json` at the workspace root so future
//! PRs have a throughput trajectory to compare against.
//!
//! The submitters hammer the wire path (`decode` + shard-split + fold),
//! which is the service's hot loop; delivery dedup is disabled so the same
//! corpus can be replayed every iteration without hitting the duplicate
//! fast path. On a single-core container shard counts mostly measure
//! reduced lock *contention* (fewer futex round trips); on multi-core they
//! additionally scale with parallelism.

use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench::{bench_artifact_path, write_bench_json, BenchRecord};
use xt_fleet::{
    DirStorage, DurabilityConfig, DurableFleet, FleetConfig, FleetService, MemStorage, RunReport,
};

/// Reports in the replayed corpus.
const CORPUS: usize = 2048;

/// Concurrent submitter threads.
const SUBMITTERS: usize = 4;

/// Distinct allocation sites across the corpus — enough to spread over 16
/// shards the way a real fleet's site population would.
const SITES: u32 = 256;

/// Shard counts under test (the acceptance axis).
const SHARD_COUNTS: [usize; 3] = [1, 4, 16];

/// A deterministic synthetic corpus, pre-encoded to wire bytes: each
/// report carries a handful of observations the way real cumulative-mode
/// summaries do (compare `RunSummary` sizes in `xt-isolate`).
fn corpus() -> Vec<Vec<u8>> {
    let mut state = 0x5EED_F1EE7_u64;
    let mut rand = move |n: u64| {
        state = state
            .wrapping_mul(0x5851_F42D_4C95_7F2D)
            .wrapping_add(0x1405_7B7E_F767_814F);
        (state >> 33) % n
    };
    (0..CORPUS)
        .map(|i| {
            let obs = |rand: &mut dyn FnMut(u64) -> u64| {
                (0..4)
                    .map(|_| {
                        (
                            rand(u64::from(SITES)) as u32,
                            [0.25, 0.5, 0.75][rand(3) as usize],
                            rand(2) == 0,
                        )
                    })
                    .collect::<Vec<_>>()
            };
            RunReport {
                client: (i % 64) as u64,
                seq: i as u32,
                failed: rand(3) == 0,
                clock: 1000 + i as u64,
                n_sites: SITES,
                overflow_obs: obs(&mut rand),
                dangling_obs: obs(&mut rand),
                pad_hints: vec![(rand(u64::from(SITES)) as u32, 8 + rand(56) as u32)],
                defer_hints: vec![(
                    rand(u64::from(SITES)) as u32,
                    rand(u64::from(SITES)) as u32,
                    1 + rand(64),
                )],
            }
            .encode()
        })
        .collect()
}

fn service(shards: usize) -> FleetService {
    FleetService::new(FleetConfig {
        shards,
        publish_every: 0,
        dedup_delivery: false,
        ..FleetConfig::default()
    })
}

/// One iteration: `SUBMITTERS` threads drain disjoint slices of the corpus
/// into the shared service.
fn drain(service: &FleetService, reports: &[Vec<u8>]) {
    std::thread::scope(|scope| {
        for slice in reports.chunks(reports.len().div_ceil(SUBMITTERS)) {
            scope.spawn(move || {
                for bytes in slice {
                    service.ingest(bytes).expect("corpus reports are valid");
                }
            });
        }
    });
}

fn ingest_throughput(c: &mut Criterion) {
    let reports = corpus();
    let mut group = c.benchmark_group("fleet");
    group.sample_size(12);
    for shards in SHARD_COUNTS {
        let svc = service(shards);
        group.bench_with_input(BenchmarkId::new("ingest", shards), &(), |b, ()| {
            b.iter(|| drain(&svc, &reports));
        });
        // The uncontended floor: one submitter, no cross-thread traffic.
        // The gap between this and the concurrent series is what shard
        // count buys back; on a single-core host the concurrent series
        // cannot beat the floor no matter the shard count.
        let svc = service(shards);
        group.bench_with_input(BenchmarkId::new("ingest_seq", shards), &(), |b, ()| {
            b.iter(|| {
                for bytes in &reports {
                    svc.ingest(bytes).expect("corpus reports are valid");
                }
            });
        });
    }
    group.finish();
}

/// Reports in the durability series (smaller than [`CORPUS`]: the
/// dir-backed variant pays a data sync per WAL append).
const DUR_CORPUS: usize = 512;

fn durable_fleet_config() -> FleetConfig {
    // dedup_delivery stays on: durable mode requires it, so the WAL-off
    // floor keeps it too for an apples-to-apples comparison. The corpus
    // has no duplicate `(client, seq)` pairs, so the dedup path never
    // triggers; each variant below uses a fresh service per iteration.
    FleetConfig {
        shards: 4,
        publish_every: 0,
        ..FleetConfig::default()
    }
}

const NO_SNAPSHOT: DurabilityConfig = DurabilityConfig { snapshot_every: 0 };

/// The durability cost model: per-report ingest with the WAL off, over
/// in-memory storage, and over a real directory (append + data sync per
/// record), plus recovery latency as a function of what the disk holds —
/// a 512- or 2048-record WAL to replay vs a compacted snapshot.
fn durability(c: &mut Criterion) {
    let reports = corpus();
    let slice = &reports[..DUR_CORPUS];
    let mut group = c.benchmark_group("durable");
    group.sample_size(10);
    // The floor the WAL's cost is measured against: same slice, same
    // shard count, no durability layer.
    group.bench_function("ingest_wal_off", |b| {
        b.iter(|| {
            let svc = FleetService::new(durable_fleet_config());
            for bytes in slice {
                svc.ingest(bytes).expect("corpus reports are valid");
            }
        });
    });
    group.bench_function("ingest_wal_mem", |b| {
        b.iter(|| {
            let fleet = DurableFleet::open(MemStorage::new(), durable_fleet_config(), NO_SNAPSHOT)
                .expect("open mem-backed fleet");
            for bytes in slice {
                fleet.ingest(bytes).expect("corpus reports are valid");
            }
        });
    });
    let base = std::env::temp_dir().join(format!("xt-bench-durable-{}", std::process::id()));
    let fresh_dir = AtomicU64::new(0);
    group.bench_function("ingest_wal_dir", |b| {
        b.iter(|| {
            let dir = base.join(fresh_dir.fetch_add(1, Ordering::Relaxed).to_string());
            let storage = DirStorage::open(&dir).expect("open storage dir");
            let fleet = DurableFleet::open(storage, durable_fleet_config(), NO_SNAPSHOT)
                .expect("open dir-backed fleet");
            for bytes in slice {
                fleet.ingest(bytes).expect("corpus reports are valid");
            }
        });
    });
    // Group commit over the same directory: 32-report batches, so one
    // storage append (one sync) covers 32 WAL records instead of one.
    // The gap to `ingest_wal_dir` is the group-commit win.
    let decoded: Vec<RunReport> = slice
        .iter()
        .map(|bytes| RunReport::decode(bytes).expect("corpus reports are valid"))
        .collect();
    group.bench_function("ingest_wal_dir_batch32", |b| {
        b.iter(|| {
            let dir = base.join(fresh_dir.fetch_add(1, Ordering::Relaxed).to_string());
            let storage = DirStorage::open(&dir).expect("open storage dir");
            let fleet = DurableFleet::open(storage, durable_fleet_config(), NO_SNAPSHOT)
                .expect("open dir-backed fleet");
            for chunk in decoded.chunks(32) {
                fleet.ingest_batch(chunk).expect("corpus reports are valid");
            }
        });
    });

    // Recovery: what a restart costs, by what it has to replay.
    for (name, count, compact) in [
        ("recover_wal_512", 512usize, false),
        ("recover_wal_2048", 2048, false),
        ("recover_snapshot_2048", 2048, true),
    ] {
        let disk = MemStorage::new();
        {
            let fleet = DurableFleet::open(disk.clone(), durable_fleet_config(), NO_SNAPSHOT)
                .expect("open prep fleet");
            for bytes in &reports[..count] {
                fleet.ingest(bytes).expect("corpus reports are valid");
            }
            if compact {
                fleet.snapshot().expect("compact");
            }
        }
        group.bench_function(name, |b| {
            b.iter(|| {
                DurableFleet::open(disk.clone(), durable_fleet_config(), NO_SNAPSHOT)
                    .expect("recover")
            });
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&base);
}

fn publish_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    group.sample_size(12);
    for shards in SHARD_COUNTS {
        let svc = service(shards);
        // Populate once: publish cost is classification over resident
        // sites, independent of how many reports built the evidence.
        drain(&svc, &corpus());
        group.bench_with_input(BenchmarkId::new("publish", shards), &(), |b, ()| {
            b.iter(|| svc.publish());
        });
    }
    group.finish();
}

/// Converts per-iteration minima to reports/sec (ingest, normalized by
/// corpus size) and epoch-publish latency, and writes `BENCH_fleet.json`.
fn emit_json(c: &mut Criterion) {
    let find = |id: String| c.results().iter().find(|r| r.id == id).map(|r| r.min_ns);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut records = Vec::new();
    // Environment record: parallel-scaling numbers below are only
    // meaningful relative to this core count.
    records.push(BenchRecord {
        name: "env/cores".into(),
        ns_per_op: cores as f64,
        ops_per_sec: 0.0,
    });
    println!("host cores: {cores}");
    let mut ingest = Vec::new();
    for shards in SHARD_COUNTS {
        if let Some(ns_iter) = find(format!("fleet/ingest/{shards}")) {
            let per_report = ns_iter / CORPUS as f64;
            let rec = BenchRecord::from_ns(format!("ingest/shards_{shards}"), per_report);
            println!(
                "ingest {shards:>2} shards: {per_report:.0} ns/report, {:.0} reports/sec ({SUBMITTERS} submitters)",
                rec.ops_per_sec
            );
            ingest.push((shards, per_report));
            records.push(rec);
        }
        if let Some(ns_iter) = find(format!("fleet/ingest_seq/{shards}")) {
            let per_report = ns_iter / CORPUS as f64;
            println!(
                "ingest {shards:>2} shards: {per_report:.0} ns/report (1 submitter, uncontended)"
            );
            records.push(BenchRecord::from_ns(
                format!("ingest_seq/shards_{shards}"),
                per_report,
            ));
        }
        if let Some(ns_iter) = find(format!("fleet/publish/{shards}")) {
            println!("publish {shards:>2} shards: {:.1} µs/epoch", ns_iter / 1e3);
            records.push(BenchRecord::from_ns(
                format!("publish/shards_{shards}"),
                ns_iter,
            ));
        }
    }
    if let (Some(&(_, one)), Some(&(_, sixteen))) = (
        ingest.iter().find(|(s, _)| *s == 1),
        ingest.iter().find(|(s, _)| *s == 16),
    ) {
        let speedup = one / sixteen;
        println!("16-shard vs 1-shard ingest speedup: {speedup:.2}x");
        // Schema-uniform speedup record: the ratio rides in ns_per_op.
        records.push(BenchRecord {
            name: "ingest/speedup_16v1".into(),
            ns_per_op: speedup,
            ops_per_sec: 0.0,
        });
    }
    // Durability series: ingest cost with the WAL off/on and recovery
    // latency by storage contents.
    for name in [
        "ingest_wal_off",
        "ingest_wal_mem",
        "ingest_wal_dir",
        "ingest_wal_dir_batch32",
    ] {
        if let Some(ns_iter) = find(format!("durable/{name}")) {
            let per_report = ns_iter / DUR_CORPUS as f64;
            let rec = BenchRecord::from_ns(format!("durable/{name}"), per_report);
            println!(
                "{name:<22}: {per_report:.0} ns/report, {:.0} reports/sec",
                rec.ops_per_sec
            );
            records.push(rec);
        }
    }
    if let (Some(off), Some(mem)) = (
        find("durable/ingest_wal_off".into()),
        find("durable/ingest_wal_mem".into()),
    ) {
        let overhead = mem / off;
        println!("WAL-on (mem) vs WAL-off ingest overhead: {overhead:.2}x");
        records.push(BenchRecord {
            name: "durable/wal_mem_overhead".into(),
            ns_per_op: overhead,
            ops_per_sec: 0.0,
        });
    }
    if let (Some(serial), Some(batched)) = (
        find("durable/ingest_wal_dir".into()),
        find("durable/ingest_wal_dir_batch32".into()),
    ) {
        let speedup = serial / batched;
        println!("group commit (batch 32) vs per-record dir WAL: {speedup:.2}x");
        records.push(BenchRecord {
            name: "durable/group_commit_speedup".into(),
            ns_per_op: speedup,
            ops_per_sec: 0.0,
        });
    }
    for name in [
        "recover_wal_512",
        "recover_wal_2048",
        "recover_snapshot_2048",
    ] {
        if let Some(ns) = find(format!("durable/{name}")) {
            println!("{name:<22}: {:.1} µs/recovery", ns / 1e3);
            records.push(BenchRecord::from_ns(format!("durable/{name}"), ns));
        }
    }
    let path = bench_artifact_path("BENCH_fleet.json");
    write_bench_json(&path, "fleet_throughput", &records).expect("write BENCH_fleet.json");
    println!("wrote {}", path.display());
}

criterion_group!(
    benches,
    ingest_throughput,
    durability,
    publish_latency,
    emit_json
);
criterion_main!(benches);
