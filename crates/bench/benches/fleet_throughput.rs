//! Fleet-service ingestion and publication benchmarks.
//!
//! ```text
//! cargo bench -p bench --bench fleet_throughput
//! ```
//!
//! The aggregation side of §5/§6.4: how many client run reports per second
//! one service instance sustains under concurrent submitters, as a
//! function of evidence-shard count (1/4/16), plus the latency of
//! publishing a patch epoch (classify every shard + lattice join). Writes
//! `BENCH_fleet.json` at the workspace root so future PRs have a
//! throughput trajectory to compare against.
//!
//! The submitters hammer the wire path (`decode` + shard-split + fold),
//! which is the service's hot loop; delivery dedup is disabled so the same
//! corpus can be replayed every iteration without hitting the duplicate
//! fast path. On a single-core container shard counts mostly measure
//! reduced lock *contention* (fewer futex round trips); on multi-core they
//! additionally scale with parallelism.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench::{bench_artifact_path, write_bench_json, BenchRecord};
use xt_fleet::{FleetConfig, FleetService, RunReport};

/// Reports in the replayed corpus.
const CORPUS: usize = 2048;

/// Concurrent submitter threads.
const SUBMITTERS: usize = 4;

/// Distinct allocation sites across the corpus — enough to spread over 16
/// shards the way a real fleet's site population would.
const SITES: u32 = 256;

/// Shard counts under test (the acceptance axis).
const SHARD_COUNTS: [usize; 3] = [1, 4, 16];

/// A deterministic synthetic corpus, pre-encoded to wire bytes: each
/// report carries a handful of observations the way real cumulative-mode
/// summaries do (compare `RunSummary` sizes in `xt-isolate`).
fn corpus() -> Vec<Vec<u8>> {
    let mut state = 0x5EED_F1EE7_u64;
    let mut rand = move |n: u64| {
        state = state
            .wrapping_mul(0x5851_F42D_4C95_7F2D)
            .wrapping_add(0x1405_7B7E_F767_814F);
        (state >> 33) % n
    };
    (0..CORPUS)
        .map(|i| {
            let obs = |rand: &mut dyn FnMut(u64) -> u64| {
                (0..4)
                    .map(|_| {
                        (
                            rand(u64::from(SITES)) as u32,
                            [0.25, 0.5, 0.75][rand(3) as usize],
                            rand(2) == 0,
                        )
                    })
                    .collect::<Vec<_>>()
            };
            RunReport {
                client: (i % 64) as u64,
                seq: i as u32,
                failed: rand(3) == 0,
                clock: 1000 + i as u64,
                n_sites: SITES,
                overflow_obs: obs(&mut rand),
                dangling_obs: obs(&mut rand),
                pad_hints: vec![(rand(u64::from(SITES)) as u32, 8 + rand(56) as u32)],
                defer_hints: vec![(
                    rand(u64::from(SITES)) as u32,
                    rand(u64::from(SITES)) as u32,
                    1 + rand(64),
                )],
            }
            .encode()
        })
        .collect()
}

fn service(shards: usize) -> FleetService {
    FleetService::new(FleetConfig {
        shards,
        publish_every: 0,
        dedup_delivery: false,
        ..FleetConfig::default()
    })
}

/// One iteration: `SUBMITTERS` threads drain disjoint slices of the corpus
/// into the shared service.
fn drain(service: &FleetService, reports: &[Vec<u8>]) {
    std::thread::scope(|scope| {
        for slice in reports.chunks(reports.len().div_ceil(SUBMITTERS)) {
            scope.spawn(move || {
                for bytes in slice {
                    service.ingest(bytes).expect("corpus reports are valid");
                }
            });
        }
    });
}

fn ingest_throughput(c: &mut Criterion) {
    let reports = corpus();
    let mut group = c.benchmark_group("fleet");
    group.sample_size(12);
    for shards in SHARD_COUNTS {
        let svc = service(shards);
        group.bench_with_input(BenchmarkId::new("ingest", shards), &(), |b, ()| {
            b.iter(|| drain(&svc, &reports));
        });
        // The uncontended floor: one submitter, no cross-thread traffic.
        // The gap between this and the concurrent series is what shard
        // count buys back; on a single-core host the concurrent series
        // cannot beat the floor no matter the shard count.
        let svc = service(shards);
        group.bench_with_input(BenchmarkId::new("ingest_seq", shards), &(), |b, ()| {
            b.iter(|| {
                for bytes in &reports {
                    svc.ingest(bytes).expect("corpus reports are valid");
                }
            });
        });
    }
    group.finish();
}

fn publish_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("fleet");
    group.sample_size(12);
    for shards in SHARD_COUNTS {
        let svc = service(shards);
        // Populate once: publish cost is classification over resident
        // sites, independent of how many reports built the evidence.
        drain(&svc, &corpus());
        group.bench_with_input(BenchmarkId::new("publish", shards), &(), |b, ()| {
            b.iter(|| svc.publish());
        });
    }
    group.finish();
}

/// Converts per-iteration minima to reports/sec (ingest, normalized by
/// corpus size) and epoch-publish latency, and writes `BENCH_fleet.json`.
fn emit_json(c: &mut Criterion) {
    let find = |id: String| c.results().iter().find(|r| r.id == id).map(|r| r.min_ns);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut records = Vec::new();
    // Environment record: parallel-scaling numbers below are only
    // meaningful relative to this core count.
    records.push(BenchRecord {
        name: "env/cores".into(),
        ns_per_op: cores as f64,
        ops_per_sec: 0.0,
    });
    println!("host cores: {cores}");
    let mut ingest = Vec::new();
    for shards in SHARD_COUNTS {
        if let Some(ns_iter) = find(format!("fleet/ingest/{shards}")) {
            let per_report = ns_iter / CORPUS as f64;
            let rec = BenchRecord::from_ns(format!("ingest/shards_{shards}"), per_report);
            println!(
                "ingest {shards:>2} shards: {per_report:.0} ns/report, {:.0} reports/sec ({SUBMITTERS} submitters)",
                rec.ops_per_sec
            );
            ingest.push((shards, per_report));
            records.push(rec);
        }
        if let Some(ns_iter) = find(format!("fleet/ingest_seq/{shards}")) {
            let per_report = ns_iter / CORPUS as f64;
            println!(
                "ingest {shards:>2} shards: {per_report:.0} ns/report (1 submitter, uncontended)"
            );
            records.push(BenchRecord::from_ns(
                format!("ingest_seq/shards_{shards}"),
                per_report,
            ));
        }
        if let Some(ns_iter) = find(format!("fleet/publish/{shards}")) {
            println!("publish {shards:>2} shards: {:.1} µs/epoch", ns_iter / 1e3);
            records.push(BenchRecord::from_ns(
                format!("publish/shards_{shards}"),
                ns_iter,
            ));
        }
    }
    if let (Some(&(_, one)), Some(&(_, sixteen))) = (
        ingest.iter().find(|(s, _)| *s == 1),
        ingest.iter().find(|(s, _)| *s == 16),
    ) {
        let speedup = one / sixteen;
        println!("16-shard vs 1-shard ingest speedup: {speedup:.2}x");
        // Schema-uniform speedup record: the ratio rides in ns_per_op.
        records.push(BenchRecord {
            name: "ingest/speedup_16v1".into(),
            ns_per_op: speedup,
            ops_per_sec: 0.0,
        });
    }
    let path = bench_artifact_path("BENCH_fleet.json");
    write_bench_json(&path, "fleet_throughput", &records).expect("write BENCH_fleet.json");
    println!("wrote {}", path.display());
}

criterion_group!(benches, ingest_throughput, publish_latency, emit_json);
criterion_main!(benches);
