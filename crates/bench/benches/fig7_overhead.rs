//! Criterion version of Fig. 7: Exterminator (DieFast + correcting
//! allocator) vs the GNU-libc-style baseline across the benchmark suite.
//!
//! ```text
//! cargo bench -p bench --bench fig7_overhead
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench::{run_on_baseline, run_on_exterminator};
use xt_workloads::{alloc_intensive_suite, spec_suite, WorkloadInput};

fn fig7(c: &mut Criterion) {
    let input = WorkloadInput::with_seed(4).intensity(2);
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    for suite in [alloc_intensive_suite(), spec_suite()] {
        for w in suite {
            group.bench_with_input(
                BenchmarkId::new("baseline", w.name()),
                &input,
                |b, input| b.iter(|| run_on_baseline(w.as_ref(), input, 1)),
            );
            group.bench_with_input(
                BenchmarkId::new("exterminator", w.name()),
                &input,
                |b, input| b.iter(|| run_on_exterminator(w.as_ref(), input, 2)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
