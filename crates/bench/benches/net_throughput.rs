//! Network front-door benchmarks: what the wire layer costs over the
//! in-process front-end.
//!
//! ```text
//! cargo bench -p bench --bench net_throughput
//! ```
//!
//! Written to `BENCH_net.json`, measured against the in-process 1-pool
//! front-end floor *from the same run* (so host noise cancels; compare
//! the floor itself against `BENCH_frontend.json`'s
//! `batch32/frontend_k1` to check run-to-run drift):
//!
//! 1. **Wire-layer overhead.** The same 32-input squid session through
//!    an in-process [`PoolFrontend`] vs. through a real localhost TCP
//!    socket (`NetClient` → `NetFrontend` wrapping an identical
//!    front-end) — identical replica executions, so the delta is frame
//!    encode/decode, two socket hops per job, and the per-connection
//!    reader/responder threads.
//! 2. **Concurrent remote clients.** Two clients on separate
//!    connections splitting the same session — the accept-budget and
//!    shared-front-end path with real socket contention.
//!
//! 1-CPU caveat (`env/cores`): client, connection threads, and every
//! replica worker share one core here, so the wire numbers include
//! scheduling traffic a real deployment would not pay; re-measure on
//! multi-core before reading anything into concurrency scaling.

use criterion::{criterion_group, criterion_main, Criterion};

use bench::{bench_artifact_path, write_bench_json, BenchRecord};
use exterminator::frontend::{FrontendConfig, PoolFrontend};
use exterminator::pool::PoolConfig;
use xt_net::{NetClient, NetConfig, NetFrontend};
use xt_patch::PatchTable;
use xt_workloads::{server_session, SquidLike, WorkloadInput};

/// Inputs per measured iteration (matches `frontend_throughput`).
const BATCH: usize = 32;

/// Replicas per pool (the paper's deployment count).
const REPLICAS: usize = 3;

/// Requests per batch input (matches `frontend_throughput`).
const REQUESTS: usize = 6;

fn session() -> Vec<WorkloadInput> {
    server_session(BATCH, REQUESTS, None)
}

fn frontend_config() -> FrontendConfig {
    FrontendConfig {
        pools: 1,
        pool: PoolConfig {
            replicas: REPLICAS,
            ..PoolConfig::default()
        },
        ..FrontendConfig::default()
    }
}

fn throughput(c: &mut Criterion) {
    let inputs = session();
    let mut group = c.benchmark_group("net");
    group.sample_size(10);

    // The floor: the identical front-end without a socket in front.
    let workload = SquidLike::new();
    std::thread::scope(|scope| {
        let frontend = PoolFrontend::scoped(scope, &workload, frontend_config(), PatchTable::new());
        group.bench_function("batch32_frontend_inproc", |b| {
            b.iter(|| {
                let outcomes = frontend.run_all(&inputs, None);
                assert!(outcomes.iter().all(|o| o.outcome.vote.unanimous()));
            });
        });
        frontend.shutdown();
    });

    // The same session over a real localhost socket, one client,
    // pipelined (all submissions in flight before the first wait —
    // the shape a remote batch caller uses).
    {
        let server = NetFrontend::bind(
            SquidLike::new(),
            "127.0.0.1:0",
            NetConfig {
                frontend: frontend_config(),
                ..NetConfig::default()
            },
        )
        .expect("bind localhost");
        let client = NetClient::connect(server.local_addr()).expect("connect");
        group.bench_function("batch32_net_1client", |b| {
            b.iter(|| {
                let tickets: Vec<_> = inputs
                    .iter()
                    .map(|input| client.submit(input, None).expect("submit"))
                    .collect();
                for ticket in tickets {
                    assert!(ticket.wait().expect("outcome").unanimous);
                }
            });
        });
        drop(client);
        server.shutdown();
    }

    // Two remote clients on separate connections splitting the batch.
    {
        let server = NetFrontend::bind(
            SquidLike::new(),
            "127.0.0.1:0",
            NetConfig {
                frontend: frontend_config(),
                ..NetConfig::default()
            },
        )
        .expect("bind localhost");
        let addr = server.local_addr();
        let halves: Vec<&[WorkloadInput]> = inputs.chunks(BATCH / 2).collect();
        group.bench_function("batch32_net_2clients", |b| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    for half in &halves {
                        scope.spawn(move || {
                            let client = NetClient::connect(addr).expect("connect");
                            let tickets: Vec<_> = half
                                .iter()
                                .map(|input| client.submit(input, None).expect("submit"))
                                .collect();
                            for ticket in tickets {
                                assert!(ticket.wait().expect("outcome").unanimous);
                            }
                        });
                    }
                });
            });
        });
        server.shutdown();
    }
    group.finish();
}

fn emit_json(c: &mut Criterion) {
    let find = |id: &str| c.results().iter().find(|r| r.id == id).map(|r| r.min_ns);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut records = Vec::new();
    records.push(BenchRecord {
        name: "env/cores".into(),
        ns_per_op: cores as f64,
        ops_per_sec: 0.0,
    });
    println!("host cores: {cores}");

    let per_input = |ns_iter: f64| ns_iter / BATCH as f64;
    let floor = find("net/batch32_frontend_inproc").map(per_input);
    if let Some(floor) = floor {
        println!(
            "in-process frontend floor: {:.0} µs/input (compare BENCH_frontend.json batch32/frontend_k1)",
            floor / 1e3
        );
        records.push(BenchRecord::from_ns("batch32/frontend_inproc", floor));
    }
    for case in ["batch32_net_1client", "batch32_net_2clients"] {
        let Some(ns) = find(&format!("net/{case}")).map(per_input) else {
            continue;
        };
        println!("{case}: {:.0} µs/input", ns / 1e3);
        records.push(BenchRecord::from_ns(format!("batch32/{}", &case[8..]), ns));
        if let ("batch32_net_1client", Some(floor)) = (case, floor) {
            let overhead = ns / floor;
            println!("wire-layer overhead (1 client vs in-process): {overhead:.3}x");
            records.push(BenchRecord {
                name: "batch32/net_overhead_vs_inproc".into(),
                ns_per_op: overhead,
                ops_per_sec: 0.0,
            });
        }
    }

    let path = bench_artifact_path("BENCH_net.json");
    write_bench_json(&path, "net_throughput", &records).expect("write BENCH_net.json");
    println!("wrote {}", path.display());
}

criterion_group!(benches, throughput, emit_json);
criterion_main!(benches);
