//! Shared support for the experiment harnesses and benchmarks that
//! regenerate every table and figure of the paper's evaluation (§7).
//!
//! Each experiment is a binary (`cargo run -p bench --release --bin
//! exp_*`) that prints the same rows/series the paper reports;
//! `EXPERIMENTS.md` records paper-vs-measured for each. The Criterion
//! benches (`cargo bench -p bench`) cover the timing measurements.

use std::time::Instant;

use xt_baseline::BaselineHeap;
use xt_correct::CorrectingHeap;
use xt_diefast::{DieFastConfig, DieFastHeap};
use xt_patch::PatchTable;
use xt_workloads::{RunResult, Workload, WorkloadInput};

/// Median wall-clock seconds of `runs` executions of `f`.
pub fn median_secs(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    samples[samples.len() / 2]
}

/// Geometric mean of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Runs `workload` once over the Fig. 7 *baseline*: the Lea-style libc
/// stand-in.
pub fn run_on_baseline(workload: &dyn Workload, input: &WorkloadInput, seed: u64) -> RunResult {
    let mut heap = BaselineHeap::with_seed(seed);
    let result = workload.run(&mut heap, input);
    assert!(
        result.completed(),
        "{} crashed on baseline: {:?}",
        workload.name(),
        result.outcome
    );
    result
}

/// Runs `workload` once over the Fig. 7 *Exterminator* stack: DieFast plus
/// the correcting allocator, in the non-replicated configuration the paper
/// measures ("DieFast plus the correcting allocator", §7.1).
pub fn run_on_exterminator(workload: &dyn Workload, input: &WorkloadInput, seed: u64) -> RunResult {
    let diefast = DieFastHeap::new(DieFastConfig::with_seed(seed));
    let mut heap = CorrectingHeap::new(diefast, PatchTable::new());
    let result = workload.run(&mut heap, input);
    assert!(
        result.completed(),
        "{} crashed on exterminator stack: {:?}",
        workload.name(),
        result.outcome
    );
    result
}

/// Prints a Markdown-ish table row.
pub fn row(cols: &[String]) {
    println!("| {} |", cols.join(" | "));
}

/// One benchmark measurement destined for a `BENCH_*.json` trajectory file.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Benchmark case name, e.g. `many_region_mixed/page_table`.
    pub name: String,
    /// Nanoseconds per operation (median).
    pub ns_per_op: f64,
    /// Operations per second implied by `ns_per_op`.
    pub ops_per_sec: f64,
}

impl BenchRecord {
    /// Builds a record from a median per-op time in nanoseconds.
    #[must_use]
    pub fn from_ns(name: impl Into<String>, ns_per_op: f64) -> Self {
        BenchRecord {
            name: name.into(),
            ns_per_op,
            ops_per_sec: if ns_per_op > 0.0 {
                1e9 / ns_per_op
            } else {
                0.0
            },
        }
    }
}

/// A JSON number: finite values as-is, NaN/infinities as 0 (JSON has no
/// representation for them and a `inf` token would poison the file).
fn json_num(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes benchmark records to a stable, dependency-free JSON file so
/// future PRs have a perf trajectory to compare against. Ratios of
/// interest (e.g. speedup over a baseline) can be included as extra
/// records.
///
/// # Errors
///
/// Propagates I/O errors from writing `path`.
pub fn write_bench_json(
    path: impl AsRef<std::path::Path>,
    suite: &str,
    records: &[BenchRecord],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"suite\": \"{}\",\n", json_str(suite)));
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_op\": {:.2}, \"ops_per_sec\": {:.0}}}{}\n",
            json_str(&r.name),
            json_num(r.ns_per_op),
            json_num(r.ops_per_sec),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// Parses a trajectory file previously written by [`write_bench_json`]
/// back into its suite name and records. Returns `None` when the file
/// is missing or not in the writer's exact line shape — a hand-edited
/// file is not worth chasing; the caller starts fresh.
#[must_use]
pub fn read_bench_json(path: impl AsRef<std::path::Path>) -> Option<(String, Vec<BenchRecord>)> {
    let text = std::fs::read_to_string(path).ok()?;
    let suite = text
        .lines()
        .find_map(|l| l.trim().strip_prefix("\"suite\": \""))?
        .strip_suffix("\",")?
        .to_string();
    let mut records = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix("{\"name\": \"") else {
            continue;
        };
        let (name, rest) = rest.split_once("\", \"ns_per_op\": ")?;
        let (ns, rest) = rest.split_once(", \"ops_per_sec\": ")?;
        let ops = rest.trim_end_matches(',').strip_suffix('}')?;
        records.push(BenchRecord {
            name: name.to_string(),
            ns_per_op: ns.parse().ok()?,
            ops_per_sec: ops.parse().ok()?,
        });
    }
    Some((suite, records))
}

/// Merges `records` into the trajectory file at `path`: existing records
/// not named by the update are preserved (and keep their order), updated
/// names are replaced in place, and new names are appended. The existing
/// suite name wins over `suite_if_new`, so two benches can share one
/// trajectory file without clobbering each other's series.
///
/// # Errors
///
/// Propagates I/O errors from writing `path`.
pub fn merge_bench_json(
    path: impl AsRef<std::path::Path>,
    suite_if_new: &str,
    records: &[BenchRecord],
) -> std::io::Result<()> {
    let path = path.as_ref();
    let (suite, mut merged) =
        read_bench_json(path).unwrap_or_else(|| (suite_if_new.to_string(), Vec::new()));
    for record in records {
        match merged.iter_mut().find(|r| r.name == record.name) {
            Some(existing) => *existing = record.clone(),
            None => merged.push(record.clone()),
        }
    }
    write_bench_json(path, &suite, &merged)
}

/// The workspace root (two levels up from this crate's manifest), where
/// `BENCH_*.json` trajectory files live.
#[must_use]
pub fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels below the workspace root")
        .to_path_buf()
}

/// Where a bench should write its `BENCH_*.json` trajectory file.
///
/// In normal runs this is the committed artifact at the workspace root.
/// Under `XT_BENCH_QUICK` (the CI smoke mode, where every measurement is
/// one iteration × two samples) the numbers are meaningless, so the write
/// is redirected to a git-ignored `BENCH_*.quick.json` sibling — the
/// smoke test still proves the bench runs end to end and produces
/// parseable output, but a quick run can never silently overwrite the
/// committed trajectory a later PR would compare against.
///
/// # Panics
///
/// Panics if `file_name` does not end in `.json` — every trajectory file
/// does, and a silent fallthrough would defeat the redirect.
#[must_use]
pub fn bench_artifact_path(file_name: &str) -> std::path::PathBuf {
    let name = if criterion::quick_mode() {
        let stem = file_name
            .strip_suffix(".json")
            .expect("bench artifacts are named BENCH_*.json");
        format!("{stem}.quick.json")
    } else {
        file_name.to_string()
    };
    workspace_root().join(name)
}

/// Formats a ratio like Fig. 7's normalized execution time.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

/// Where a throughput ramp stops scaling, and how it stopped.
///
/// The index is into the ramp handed to [`knee`]; the variant records
/// *why* scaling ended there, because a load harness that prints
/// "plateau" for an actual throughput regression hides the exact signal
/// a saturation run exists to surface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Knee {
    /// Throughput still grew at this stage, but by under the marginal-gain
    /// threshold — the classic saturation knee.
    Plateau(usize),
    /// Throughput *fell* at this stage: past the knee and degrading
    /// (lock convoys, queue collapse), not merely flat.
    Regression(usize),
    /// The ramp never stopped scaling; the index is the throughput argmax
    /// (the last stage, unless noise reordered the tail).
    Peak(usize),
}

impl Knee {
    /// The stage index, whichever way scaling ended.
    #[must_use]
    pub fn index(&self) -> usize {
        match *self {
            Knee::Plateau(i) | Knee::Regression(i) | Knee::Peak(i) => i,
        }
    }

    /// Short label for ramp printouts.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Knee::Plateau(_) => "plateau",
            Knee::Regression(_) => "regression",
            Knee::Peak(_) => "peak",
        }
    }
}

/// Finds the knee of a throughput ramp: the first stage whose marginal
/// gain over its predecessor is under 15%, distinguishing a flat step
/// ([`Knee::Plateau`]) from an outright drop ([`Knee::Regression`]).
/// A ramp that never stops scaling reports [`Knee::Peak`] at the argmax.
///
/// Total over hostile input: non-finite throughputs (a zero-duration
/// stage divides to infinity or NaN) never participate in a comparison —
/// the marginal-gain test skips pairs with a non-finite side, and the
/// argmax ranks by [`f64::total_cmp`] over finite stages only, falling
/// back to index 0 when nothing is finite. An empty ramp is `Peak(0)`.
#[must_use]
pub fn knee(throughputs: &[f64]) -> Knee {
    for i in 1..throughputs.len() {
        let (prev, cur) = (throughputs[i - 1], throughputs[i]);
        if !prev.is_finite() || !cur.is_finite() {
            continue;
        }
        if cur < prev {
            return Knee::Regression(i);
        }
        if cur < prev * 1.15 {
            return Knee::Plateau(i);
        }
    }
    let peak = throughputs
        .iter()
        .enumerate()
        .filter(|(_, t)| t.is_finite())
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map_or(0, |(i, _)| i);
    Knee::Peak(peak)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_workloads::EspressoLike;

    #[test]
    fn geomean_matches_hand_computation() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn both_stacks_run_the_suite() {
        let input = WorkloadInput::with_seed(5);
        let a = run_on_baseline(&EspressoLike::new(), &input, 1);
        let b = run_on_exterminator(&EspressoLike::new(), &input, 2);
        assert_eq!(a.output, b.output, "stacks disagree on output");
    }

    #[test]
    fn knee_of_monotone_ramp_is_the_peak() {
        // Every step gains >15%: the ramp never saturates.
        assert_eq!(knee(&[100.0, 200.0, 400.0, 800.0]), Knee::Peak(3));
        assert_eq!(knee(&[]), Knee::Peak(0));
        assert_eq!(knee(&[42.0]), Knee::Peak(0));
    }

    #[test]
    fn knee_of_plateau_ramp_is_the_flat_step() {
        // 400 → 420 is +5%: flat, not falling.
        assert_eq!(knee(&[100.0, 200.0, 400.0, 420.0]), Knee::Plateau(3));
    }

    #[test]
    fn knee_of_regression_ramp_is_labelled_regression() {
        // A throughput *drop* must not be mislabelled a plateau.
        assert_eq!(knee(&[100.0, 200.0, 150.0, 140.0]), Knee::Regression(2));
    }

    #[test]
    fn knee_survives_non_finite_throughputs() {
        // NaN stages neither panic (the old argmax unwrapped a
        // partial_cmp) nor win the argmax; comparisons skip them.
        assert_eq!(knee(&[f64::NAN, 100.0, 120.0]), Knee::Peak(2));
        assert_eq!(knee(&[100.0, f64::NAN, 200.0, 190.0]), Knee::Regression(3));
        assert_eq!(knee(&[f64::NAN, f64::INFINITY]), Knee::Peak(0));
        assert_eq!(knee(&[100.0, f64::INFINITY, 90.0]), Knee::Peak(0));
    }

    #[test]
    fn bench_json_is_parseable_even_with_hostile_values() {
        // Scratch space under target/, NOT std::env::temp_dir(): that
        // reads TMPDIR via getenv, and this binary's quick-mode test
        // mutates the environment — concurrent getenv/setenv is UB on
        // glibc, so no other test here may read it.
        let dir = workspace_root().join("target/xt_bench_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let records = [
            BenchRecord::from_ns("zero/ns\"quoted\\", 0.0),
            BenchRecord {
                name: "nan".into(),
                ns_per_op: f64::NAN,
                ops_per_sec: f64::INFINITY,
            },
        ];
        write_bench_json(&path, "suite", &records).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\\\"quoted\\\\"), "name not escaped: {text}");
        assert!(
            !text.contains("inf") && !text.contains("NaN"),
            "non-finite leaked: {text}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    /// The quick-mode clobber regression: `XT_BENCH_QUICK=1 cargo bench`
    /// used to overwrite the committed `BENCH_*.json` trajectories with
    /// meaningless 2-sample numbers. Quick runs must write to the
    /// git-ignored `*.quick.json` sibling and never touch the real
    /// artifact path.
    #[test]
    fn quick_mode_never_writes_the_committed_artifact_path() {
        // This is the only test in this binary that touches the
        // environment (concurrent getenv/setenv is UB on glibc).
        std::env::set_var("XT_BENCH_QUICK", "1");
        let quick = bench_artifact_path("BENCH_selftest.json");
        std::env::remove_var("XT_BENCH_QUICK");
        let real = bench_artifact_path("BENCH_selftest.json");

        assert_eq!(real, workspace_root().join("BENCH_selftest.json"));
        assert_eq!(quick, workspace_root().join("BENCH_selftest.quick.json"));
        assert_ne!(quick, real, "quick mode redirected nowhere");

        // Drive the actual write path a quick bench run takes and verify
        // the committed location stays untouched.
        assert!(!real.exists(), "stale selftest artifact at {real:?}");
        write_bench_json(&quick, "selftest", &[BenchRecord::from_ns("noop", 1.0)]).unwrap();
        assert!(
            !real.exists(),
            "a quick-mode write reached the committed artifact path"
        );
        assert!(quick.exists());
        std::fs::remove_file(&quick).unwrap();
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        let mut calls = 0;
        let m = median_secs(5, || {
            calls += 1;
            if calls == 1 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        });
        assert!(m < 0.005, "median polluted by outlier: {m}");
    }
}
