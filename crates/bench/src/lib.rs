//! Shared support for the experiment harnesses and benchmarks that
//! regenerate every table and figure of the paper's evaluation (§7).
//!
//! Each experiment is a binary (`cargo run -p bench --release --bin
//! exp_*`) that prints the same rows/series the paper reports;
//! `EXPERIMENTS.md` records paper-vs-measured for each. The Criterion
//! benches (`cargo bench -p bench`) cover the timing measurements.

use std::time::Instant;


use xt_baseline::BaselineHeap;
use xt_correct::CorrectingHeap;
use xt_diefast::{DieFastConfig, DieFastHeap};
use xt_patch::PatchTable;
use xt_workloads::{RunResult, Workload, WorkloadInput};

/// Median wall-clock seconds of `runs` executions of `f`.
pub fn median_secs(runs: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..runs.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    samples[samples.len() / 2]
}

/// Geometric mean of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Runs `workload` once over the Fig. 7 *baseline*: the Lea-style libc
/// stand-in.
pub fn run_on_baseline(workload: &dyn Workload, input: &WorkloadInput, seed: u64) -> RunResult {
    let mut heap = BaselineHeap::with_seed(seed);
    let result = workload.run(&mut heap, input);
    assert!(
        result.completed(),
        "{} crashed on baseline: {:?}",
        workload.name(),
        result.outcome
    );
    result
}

/// Runs `workload` once over the Fig. 7 *Exterminator* stack: DieFast plus
/// the correcting allocator, in the non-replicated configuration the paper
/// measures ("DieFast plus the correcting allocator", §7.1).
pub fn run_on_exterminator(
    workload: &dyn Workload,
    input: &WorkloadInput,
    seed: u64,
) -> RunResult {
    let diefast = DieFastHeap::new(DieFastConfig::with_seed(seed));
    let mut heap = CorrectingHeap::new(diefast, PatchTable::new());
    let result = workload.run(&mut heap, input);
    assert!(
        result.completed(),
        "{} crashed on exterminator stack: {:?}",
        workload.name(),
        result.outcome
    );
    result
}

/// Prints a Markdown-ish table row.
pub fn row(cols: &[String]) {
    println!("| {} |", cols.join(" | "));
}

/// Formats a ratio like Fig. 7's normalized execution time.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;
    use xt_workloads::EspressoLike;

    #[test]
    fn geomean_matches_hand_computation() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn both_stacks_run_the_suite() {
        let input = WorkloadInput::with_seed(5);
        let a = run_on_baseline(&EspressoLike::new(), &input, 1);
        let b = run_on_exterminator(&EspressoLike::new(), &input, 2);
        assert_eq!(a.output, b.output, "stacks disagree on output");
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        let mut calls = 0;
        let m = median_secs(5, || {
            calls += 1;
            if calls == 1 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        });
        assert!(m < 0.005, "median polluted by outlier: {m}");
    }
}
