//! Monte-Carlo validation of Theorems 1–3 (§4): measured rates vs the
//! analytical bounds.
//!
//! ```text
//! cargo run -p bench --release --bin exp_theorems
//! ```

use xt_alloc::{Heap, Rng, SiteHash};
use xt_diefast::{DieFastConfig, DieFastHeap};
use xt_diehard::SlotState;
use xt_image::HeapImage;
use xt_isolate::theory;

const SITE: SiteHash = SiteHash::from_raw(1);

/// Builds a heavily churned heap of roughly `live` live objects of one
/// class. Theorem 2's premise is that free space carries canaries with
/// probability p = 1/2; that only holds once (nearly) every slot has been
/// allocated at least once, so the churn runs long.
fn churned(seed: u64, live_target: usize) -> (DieFastHeap, Vec<xt_arena::Addr>) {
    let mut h = DieFastHeap::new(DieFastConfig::with_seed(seed).fill_probability(0.5));
    let mut rng = Rng::new(seed ^ 0xFEED);
    let mut live = Vec::new();
    for _ in 0..live_target * 12 {
        if live.len() > live_target && rng.chance(0.55) {
            let v: xt_arena::Addr = live.swap_remove(rng.below_usize(live.len()));
            h.free(v, SITE);
        } else {
            live.push(h.malloc(16, SITE).unwrap());
        }
    }
    (h, live)
}

/// Theorem 2: probability that a b-byte overflow misses every canary
/// across k independently randomized heaps.
fn measure_missed_overflow(k: u32, trials: usize) -> f64 {
    let mut misses = 0;
    for t in 0..trials {
        let mut undetected_everywhere = true;
        for i in 0..k {
            let (h, live) = churned(t as u64 * 31 + u64::from(i), 60);
            // Overflow 8 bytes out of a random live object.
            let culprit = live[t % live.len()];
            let mut h = h;
            let target = culprit + 16;
            let _ = h.arena_mut().write_bytes(target, &[0xE7; 8]);
            let image = HeapImage::capture(&h);
            if !image.scan_canary_corruptions().is_empty() {
                undetected_everywhere = false;
                break;
            }
        }
        if undetected_everywhere {
            misses += 1;
        }
    }
    misses as f64 / trials as f64
}

/// Theorem 3: expected number of (culprit, δ) candidates — other than the
/// true culprit — surviving intersection across k heaps.
fn measure_spurious_culprits(k: u32, trials: usize) -> f64 {
    let mut total_spurious = 0usize;
    let mut measured = 0usize;
    for t in 0..trials {
        // In each heap, the victim's candidate set is every preceding
        // ever-used slot at its δ; intersect over k heaps by (object, δ).
        let mut sets: Vec<std::collections::HashSet<(u64, u64)>> = Vec::new();
        let victim_id = 40u64; // the 40th allocation is the victim
        for i in 0..k {
            let (h, _) = churned(t as u64 * 131 + u64::from(i) * 7 + 1, 60);
            let image = HeapImage::capture(&h);
            let Some(victim) = image.find_object(xt_alloc::ObjectId::from_raw(victim_id)) else {
                sets.clear();
                break;
            };
            let victim_addr = image.slot_addr(victim);
            let mh = image.miniheap_of(victim);
            let mut set = std::collections::HashSet::new();
            for (idx, slot) in mh.slots.iter().enumerate() {
                let addr = mh.slot_addr(idx);
                if addr < victim_addr && slot.ever_used {
                    set.insert((slot.object_id.raw(), victim_addr - addr));
                }
            }
            sets.push(set);
        }
        if sets.len() != k as usize {
            continue;
        }
        let mut intersection = sets[0].clone();
        for s in &sets[1..] {
            intersection.retain(|x| s.contains(x));
        }
        measured += 1;
        total_spurious += intersection.len();
    }
    if measured == 0 {
        return f64::NAN;
    }
    total_spurious as f64 / measured as f64
}

/// Theorem 1: probability that an overflow overwrites the same object in
/// all k heaps (approximated by: the slot after a fixed culprit holds the
/// same object id in all k heaps).
fn measure_identical_overflow(k: u32, trials: usize) -> f64 {
    let mut identical = 0;
    for t in 0..trials {
        let mut first: Option<u64> = None;
        let mut all_same = true;
        for i in 0..k {
            let (h, _) = churned(t as u64 * 17 + u64::from(i) * 3 + 5, 60);
            let image = HeapImage::capture(&h);
            let Some(culprit) = image.find_object(xt_alloc::ObjectId::from_raw(30)) else {
                all_same = false;
                break;
            };
            let next = image.resolve_addr(image.slot_addr(culprit) + 16);
            let id = match next {
                Some(hit) if image.slot(hit.slot).state == SlotState::Live => hit.object_id.raw(),
                _ => u64::MAX - u64::from(i), // no live victim: never identical
            };
            match first {
                None => first = Some(id),
                Some(f) if f == id => {}
                _ => {
                    all_same = false;
                    break;
                }
            }
        }
        if all_same {
            identical += 1;
        }
    }
    identical as f64 / trials as f64
}

fn main() {
    println!("# Theorems 1-3: measured vs analytical (Monte Carlo)\n");
    let trials = 300;

    println!("## Theorem 2 — P(overflow misses all canaries), 8-byte overflow, M = 2");
    println!("| k | measured | analytical bound |");
    println!("| --- | --- | --- |");
    for k in 1..=4u32 {
        let measured = measure_missed_overflow(k, trials);
        let bound = theory::p_missed_overflow(2.0, k, 8);
        println!("| {k} | {measured:.3} | <= {bound:.3} |");
        // Monte-Carlo noise plus residual virgin slots allow a small
        // excess over the asymptotic bound.
        assert!(
            measured <= bound + 0.10,
            "measured miss rate {measured} violates Theorem 2 bound {bound}"
        );
    }

    println!("\n## Theorem 3 — E[spurious culprits] at fixed delta");
    println!("| k | measured | analytical |");
    println!("| --- | --- | --- |");
    for k in 1..=3u32 {
        let measured = measure_spurious_culprits(k, trials);
        // The true-culprit style candidate at δ=16 (immediate predecessor)
        // recurs by construction; subtract that systematic 1.
        let analytical = theory::expected_culprits(120.0, k);
        println!("| {k} | {measured:.3} | {analytical:.3} |");
    }

    println!("\n## Theorem 1 — P(identical victim in all k heaps)");
    println!("| k | measured | analytical bound (s=1, H=120) |");
    println!("| --- | --- | --- |");
    for k in 2..=3u32 {
        let measured = measure_identical_overflow(k, trials);
        let bound = theory::p_identical_overflow(k, 1.0, 120.0);
        println!("| {k} | {measured:.4} | <= {bound:.6} (per-pair) |");
    }
    println!("\nNote: Theorem 1's bound is per victim-pair; the measured row uses the");
    println!("adjacent-slot proxy, which upper-bounds the per-pair probability.");
}
