//! Ablation: the heap multiplier `M`.
//!
//! ```text
//! cargo run -p bench --release --bin exp_ablation_m
//! ```
//!
//! Theorem 2's detection term is `(M−1)/2M` per image: more
//! over-provisioning means more canaried fence-posts and better detection,
//! at the cost of address-space footprint. The paper fixes `M = 2`
//! throughout (§7.1); this sweep shows what that choice buys.

use exterminator::runner::{execute, find_manifesting_fault, RunConfig};
use xt_alloc::Heap as _;
use xt_diefast::DieFastConfig;
use xt_diehard::DieHardConfig;
use xt_faults::FaultKind;
use xt_isolate::theory;
use xt_workloads::{EspressoLike, Workload as _, WorkloadInput};

fn main() {
    let input = WorkloadInput::with_seed(6).intensity(3);
    let fault = find_manifesting_fault(
        &EspressoLike::new(),
        &input,
        FaultKind::BufferOverflow {
            delta: 20,
            fill: 0xEE,
        },
        100,
        300,
        30,
        6,
        13,
    )
    .expect("no manifesting overflow");
    println!("# Ablation: heap multiplier M (20B injected overflow, 24 runs each)\n");
    println!("| M | detection rate | theorem-2 per-image floor | heap footprint (clean run) |");
    println!("| --- | --- | --- | --- |");
    for m in [1.5, 2.0, 4.0, 8.0] {
        let mut detected = 0;
        let runs = 24;
        for seed in 0..runs {
            let mut config = RunConfig::with_seed(7_000 + seed);
            config.diefast =
                DieFastConfig::with_seed(0).heap(DieHardConfig::with_seed(0).multiplier(m));
            config.fault = Some(fault);
            config.halt_on_signal = true;
            if execute(&EspressoLike::new(), &input, config).failed() {
                detected += 1;
            }
        }
        // Footprint of a clean run at this M.
        let mut heap = xt_diefast::DieFastHeap::new(
            DieFastConfig::with_seed(1).heap(DieHardConfig::with_seed(1).multiplier(m)),
        );
        EspressoLike::new().run(&mut heap, &input);
        let footprint = heap.arena().mapped_bytes();
        println!(
            "| {m} | {:.2} | {:.2} | {} KiB |",
            detected as f64 / runs as f64,
            (m - 1.0) / (2.0 * m),
            footprint / 1024
        );
        let _ = theory::p_missed_overflow(m, 1, 8);
    }
    println!("\nobserved shape: detection *peaks* near M = 2. Theorem 2's floor grows");
    println!("with M, but its premise is that free space has been canaried; extra");
    println!("over-provisioning adds never-used (virgin, canary-less) slots, so very");
    println!("large M dilutes the fence-posts. The paper's M = 2 sits at the sweet spot.");
}
