//! §7.3 "Patch Overhead": the space cost of applied corrections.
//!
//! ```text
//! cargo run -p bench --release --bin exp_patch_overhead
//! ```
//!
//! Paper results: for 36-byte overflow pads, total space overhead between
//! 320 and 2816 bytes; for dangling deferrals, excess memory from 32 bytes
//! to 1024 bytes (one 256-byte object deferred for 4 deallocations),
//! under 1% of the application's maximum memory. Corrections impose no
//! execution-time overhead beyond table lookups.

use exterminator::iterative::{IterativeConfig, IterativeMode};
use exterminator::runner::find_manifesting_fault;
use xt_alloc::Heap as _;
use xt_correct::CorrectingHeap;
use xt_diefast::{DieFastConfig, DieFastHeap};
use xt_faults::{FaultKind, FaultyHeap};
use xt_workloads::{EspressoLike, Workload as _, WorkloadInput};

fn main() {
    let input = WorkloadInput::with_seed(6).intensity(3);
    println!("# §7.3 patch overhead (espresso-like)\n");
    println!("| patch kind | entries | peak pad bytes | total drag (B*ticks) | peak deferred B | heap footprint |");
    println!("| --- | --- | --- | --- | --- | --- |");

    // Overflow pads: repair a 36-byte overflow, then measure a patched run.
    for (label, kind) in [
        (
            "overflow pad (36B)",
            FaultKind::BufferOverflow {
                delta: 36,
                fill: 0xEE,
            },
        ),
        ("dangling deferral", FaultKind::DanglingFree { lag: 12 }),
    ] {
        let mut found = None;
        for sel in 1..40u64 {
            let Some(fault) =
                find_manifesting_fault(&EspressoLike::new(), &input, kind, 100, 450, 10, 4, sel)
            else {
                continue;
            };
            let mut mode = IterativeMode::new(IterativeConfig {
                base_seed: sel ^ 0x0B0E,
                ..IterativeConfig::default()
            });
            let outcome = mode.repair(&EspressoLike::new(), &input, Some(fault));
            if outcome.fixed && !outcome.patches.is_empty() {
                found = Some((fault, outcome.patches));
                break;
            }
        }
        let Some((fault, patches)) = found else {
            println!("| {label} | (no repairable fault found) | - | - | - | - |");
            continue;
        };
        // One patched run, instrumented.
        let diefast = DieFastHeap::new(DieFastConfig::with_seed(99));
        let correcting = CorrectingHeap::new(diefast, patches.clone());
        let mut stack = FaultyHeap::new(correcting, Some(fault));
        let result = EspressoLike::new().run(&mut stack, &input);
        assert!(
            result.completed(),
            "patched run failed: {:?}",
            result.outcome
        );
        let correcting = stack.into_inner();
        let stats = correcting.stats();
        let footprint = correcting.arena().mapped_bytes();
        println!(
            "| {label} | {} | {} | {} | {} | {} |",
            patches.len(),
            stats.peak_padded_bytes,
            stats.total_drag_bytes_ticks,
            stats.peak_deferred_bytes,
            footprint
        );
        let overhead_pct =
            100.0 * (stats.peak_padded_bytes + stats.peak_deferred_bytes) as f64 / footprint as f64;
        println!(
            "  -> peak correction space = {:.3}% of heap footprint (paper: <1%)",
            overhead_pct
        );
    }
    println!("\npaper: 320–2816 bytes for 36B pads; 32–1024 bytes drag for deferrals");
}
