//! Ablation: the deferral-escalation policy (§6.2).
//!
//! ```text
//! cargo run -p bench --release --bin exp_ablation_deferral
//! ```
//!
//! The paper defers by `2×(T−τ)+1` so that repeated isolation converges
//! "in a logarithmic number of executions". This ablation compares that
//! policy against a fixed small increment, counting repair rounds on the
//! same injected dangling fault.

use exterminator::iterative::{IterativeConfig, IterativeMode};
use exterminator::runner::{execute, find_manifesting_fault, RunConfig};
use xt_alloc::SitePair;
use xt_faults::{FaultKind, FaultSpec, INJECTED_FREE_SITE};
use xt_patch::PatchTable;
use xt_workloads::{EspressoLike, WorkloadInput};

/// Repairs with the paper's policy; returns rounds used.
fn paper_policy(input: &WorkloadInput, fault: FaultSpec, seed: u64) -> Option<usize> {
    let mut mode = IterativeMode::new(IterativeConfig {
        base_seed: seed,
        ..IterativeConfig::default()
    });
    let outcome = mode.repair(&EspressoLike::new(), input, Some(fault));
    (outcome.fixed && outcome.patches.deferrals().count() > 0).then_some(outcome.rounds.len())
}

/// A naive policy: fixed +8-tick increments, re-testing until clean.
fn fixed_increment_policy(
    input: &WorkloadInput,
    fault: FaultSpec,
    pair: SitePair,
    max_rounds: usize,
) -> Option<usize> {
    let mut patches = PatchTable::new();
    let mut deferral = 0u64;
    for round in 1..=max_rounds {
        // Probe: do a few randomized runs fail?
        let mut failed = false;
        for seed in 0..3u64 {
            let mut config = RunConfig::with_seed(0xF1 + seed + round as u64 * 17);
            config.fault = Some(fault);
            config.patches = patches.clone();
            config.halt_on_signal = true;
            if execute(&EspressoLike::new(), input, config).failed() {
                failed = true;
                break;
            }
        }
        if !failed {
            return Some(round);
        }
        deferral += 8;
        patches = PatchTable::new();
        patches.add_deferral(pair, deferral);
    }
    None
}

fn main() {
    let input = WorkloadInput::with_seed(21).intensity(3);
    println!("# Ablation: deferral policy (injected dangling free, lag 12)\n");
    println!("| fault | paper 2(T-t)+1 rounds | fixed +8/round rounds (cap 40) |");
    println!("| --- | --- | --- |");
    let mut shown = 0;
    let mut sel = 0u64;
    while shown < 5 && sel < 120 {
        sel += 1;
        let Some(fault) = find_manifesting_fault(
            &EspressoLike::new(),
            &input,
            FaultKind::DanglingFree { lag: 12 },
            100,
            450,
            6,
            4,
            sel,
        ) else {
            continue;
        };
        let Some(paper_rounds) = paper_policy(&input, fault, sel ^ 0xD1F) else {
            continue; // unisolatable fault (read-only dangling)
        };
        // Recover the alloc site so the naive policy can patch the same pair.
        let pair = {
            let mut config = RunConfig::with_seed(3);
            config.fault = Some(fault);
            config.diefast = xt_diefast::DieFastConfig::cumulative_with_seed(3);
            let rec = execute(&EspressoLike::new(), &input, config);
            let site = rec
                .history
                .unwrap()
                .get(xt_alloc::ObjectId::from_raw(fault.trigger.raw()))
                .map(|r| r.alloc_site);
            let Some(site) = site else { continue };
            SitePair::new(site, INJECTED_FREE_SITE)
        };
        let fixed = fixed_increment_policy(&input, fault, pair, 40);
        println!(
            "| trigger {} | {} | {} |",
            fault.trigger,
            paper_rounds,
            fixed.map_or("not converged".to_string(), |r| r.to_string())
        );
        shown += 1;
    }
    println!("\nexpected shape: geometric escalation converges in far fewer rounds");
}
