//! §7.2 "Injected Faults — Dangling pointer errors": 10 dangling faults in
//! espresso under iterative and cumulative modes.
//!
//! ```text
//! cargo run -p bench --release --bin exp_injected_dangling
//! ```
//!
//! Paper result (iterative): isolated in 4 of 10 runs; in 4 more espresso
//! reads a canary and crashes/aborts with no corruption to analyze; in 2
//! the canary write cascades. Paper result (cumulative): all 10 isolated,
//! needing 22–34 runs (≈15 failures) each.

use exterminator::cumulative::{CumulativeMode, CumulativeModeConfig};
use exterminator::iterative::{FailureKind, IterativeConfig, IterativeMode};
use exterminator::runner::find_manifesting_fault;
use xt_faults::{FaultKind, FaultSpec};
use xt_workloads::{EspressoLike, WorkloadInput};

fn gather_faults(input: &WorkloadInput, n: usize) -> Vec<FaultSpec> {
    let mut faults = Vec::new();
    let mut sel = 0u64;
    while faults.len() < n && sel < 500 {
        sel += 1;
        if let Some(fault) = find_manifesting_fault(
            &EspressoLike::new(),
            input,
            FaultKind::DanglingFree { lag: 12 },
            100,
            450,
            6,
            4,
            sel,
        ) {
            if !faults.contains(&fault) {
                faults.push(fault);
            }
        }
    }
    faults
}

fn main() {
    let input = WorkloadInput::with_seed(21).intensity(3);
    let faults = gather_faults(&input, 10);
    println!(
        "# §7.2 injected dangling pointers (espresso-like), {} faults\n",
        faults.len()
    );

    // --- Iterative mode ---
    let mut isolated = 0;
    let mut read_abort = 0;
    let mut cascade = 0;
    for (i, &fault) in faults.iter().enumerate() {
        let mut mode = IterativeMode::new(IterativeConfig {
            base_seed: 0xDA | (i as u64) << 8,
            ..IterativeConfig::default()
        });
        let outcome = mode.repair(&EspressoLike::new(), &input, Some(fault));
        let got_deferral = outcome.patches.deferrals().count() > 0;
        let seg_faulted = outcome
            .rounds
            .iter()
            .any(|r| r.failure == FailureKind::SegFault);
        if outcome.fixed && got_deferral {
            isolated += 1;
        } else if seg_faulted {
            cascade += 1; // wild pointer chase through canary values
        } else {
            read_abort += 1; // canary read → abort, nothing to isolate
        }
    }
    println!("## iterative mode");
    println!("| outcome | this reproduction | paper |");
    println!("| --- | --- | --- |");
    println!(
        "| isolated & corrected | {isolated}/{} | 4/10 |",
        faults.len()
    );
    println!(
        "| canary read → abort (unisolatable) | {read_abort}/{} | 4/10 |",
        faults.len()
    );
    println!("| cascade / crash | {cascade}/{} | 2/10 |", faults.len());

    // --- Cumulative mode ---
    // Note: on this reproduction's small heap (hundreds of slots instead of
    // real espresso's ~10^5), a dangled slot is often *reused* within the
    // run; failures caused by writes through the stale pointer onto the new
    // occupant are canary-independent, so some faults never develop the
    // canary/failure correlation the classifier tests for. The paper saw
    // the same effect in mild form ("execution continues long enough for
    // the allocator to reuse the culprit object").
    for (label, multiplier) in [("M = 2, paper setting", 2.0)] {
        println!("\n## cumulative mode (p = 1/2, {label})");
        println!("| fault | isolated | runs | failures |");
        println!("| --- | --- | --- | --- |");
        let mut runs_list = Vec::new();
        for (i, &fault) in faults.iter().enumerate() {
            let mut mode = CumulativeMode::new(CumulativeModeConfig {
                base_seed: 0xCC00 + i as u64,
                multiplier,
                ..CumulativeModeConfig::default()
            });
            let outcome = mode.run_until_isolated(&EspressoLike::new(), &input, Some(fault), 150);
            if outcome.isolated {
                runs_list.push(outcome.runs);
            }
            println!(
                "| #{i} (trigger {}) | {} | {} | {} |",
                fault.trigger, outcome.isolated, outcome.runs, outcome.failures
            );
        }
        runs_list.sort_unstable();
        println!(
            "isolated {}/{}; runs range {:?} (paper: 10/10, 22-34 runs)",
            runs_list.len(),
            faults.len(),
            runs_list.first().zip(runs_list.last()),
        );
    }
}
