//! Fleet-scale cumulative-mode convergence (§5, §6.4 at population scale).
//!
//! ```text
//! cargo run -p bench --release --bin exp_fleet
//! ```
//!
//! The paper's cumulative mode needs 22–34 runs of pooled evidence to
//! isolate an injected dangling fault for *one* user (§7.2, Fig. 6). This
//! experiment runs the same convergence at fleet scale: 600 simulated
//! clients — half injecting a cold-site buffer overflow, half a dangling
//! free — each looping run → submit report → pull patch epoch against one
//! sharded aggregation service. Because every client's summary lands in
//! the same pooled evidence, the *population* converges after roughly the
//! same total number of runs a single user would have needed, i.e. within
//! the fleet's first round: collaborative correction amortizes the crash
//! budget over the whole community.

use xt_fleet::simulator::{demo_faults, FleetSimulator, SimConfig};
use xt_fleet::FleetConfig;
use xt_workloads::{EspressoLike, WorkloadInput};

/// Simulated clients (≥ 500, one scoped thread each).
const CLIENTS: usize = 600;

fn main() {
    let input = WorkloadInput::with_seed(21).intensity(3);
    let workload = EspressoLike::new();
    println!("# fleet convergence: {CLIENTS} clients, injected overflow + dangling\n");

    let (overflow, dangling) =
        demo_faults(&workload, &input).expect("no isolatable demonstration faults found");
    println!("bug A (overflow): {overflow:?}");
    println!("bug B (dangling): {dangling:?}\n");

    let sim = FleetSimulator::new(
        &workload,
        input,
        vec![overflow, dangling],
        SimConfig {
            clients: CLIENTS,
            max_rounds: 6,
            fleet: FleetConfig {
                shards: 16,
                publish_every: 64,
                ..FleetConfig::default()
            },
            ..SimConfig::default()
        },
    );
    let start = std::time::Instant::now();
    let outcome = sim.run();
    let elapsed = start.elapsed();

    println!("| fault | corrected | correcting epoch | reports when it published |");
    println!("| --- | --- | --- | --- |");
    for fc in &outcome.per_fault {
        println!(
            "| {:?} @ {} | {} | {} | {} |",
            fc.fault.kind, fc.fault.trigger, fc.corrected, fc.epoch, fc.reports
        );
    }
    let m = outcome.metrics;
    println!("\n## convergence summary");
    println!("clients:            {CLIENTS}");
    println!(
        "reports ingested:   {} ({} failed)",
        m.reports, m.failed_reports
    );
    println!("epochs published:   {}", m.epoch);
    println!(
        "runs to correction: {} fleet-wide (1 report per run; a single paper user needed 22-34 runs per bug)",
        outcome
            .per_fault
            .iter()
            .map(|f| f.reports)
            .max()
            .unwrap_or(outcome.total_runs)
    );
    println!(
        "total fleet runs:   {} (clients keep running while the epoch verifies)",
        outcome.total_runs
    );
    println!(
        "sites tracked:      {} across {} shards",
        m.sites_tracked, m.shards
    );
    println!("final epoch:        #{}", outcome.final_epoch.number);
    println!("wall clock:         {:.2}s", elapsed.as_secs_f64());
    println!(
        "\n## service observability at shutdown\n{}",
        outcome.observability.render_text()
    );
    println!(
        "\npublished patch table:\n{}",
        outcome.final_epoch.to_text()
    );
    assert!(
        outcome.converged,
        "fleet failed to correct both injected bugs: {:?}",
        outcome.per_fault
    );
    println!("=> fleet converged: the published epoch corrects both bugs for every client");
}
