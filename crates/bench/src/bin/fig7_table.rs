//! Figure 7: runtime overhead of Exterminator, normalized to the
//! GNU-libc-style baseline allocator.
//!
//! ```text
//! cargo run -p bench --release --bin fig7_table
//! ```
//!
//! Paper result: overhead from ~0% (186.crafty) to 132% (cfrac), geometric
//! mean 25.1%; allocation-intensive suite geomean 81.2%, SPECint2000
//! geomean 7.2%. The absolute numbers here come from a simulated address
//! space, but the *shape* — who pays, by roughly what factor — is the
//! reproduction target.

use std::time::Instant;

use bench::{fmt_ratio, geomean, row, run_on_baseline, run_on_exterminator};
use xt_workloads::{alloc_intensive_suite, spec_suite, Workload, WorkloadInput};

/// One paired sample: baseline and Exterminator back to back, so
/// machine-wide noise (frequency scaling, background work) hits both
/// sides equally and cancels in the ratio.
fn paired_ratio(w: &dyn Workload, input: &WorkloadInput, round: u64) -> (f64, f64, f64) {
    let t = Instant::now();
    run_on_baseline(w, input, 1 + round);
    let base = t.elapsed().as_secs_f64();
    let t = Instant::now();
    run_on_exterminator(w, input, 2 + round);
    let ext = t.elapsed().as_secs_f64();
    (base, ext, ext / base)
}

fn main() {
    let runs = 9;
    let input = WorkloadInput::with_seed(4).intensity(8);
    println!("# Fig. 7 — normalized execution time (baseline = 1.00x)\n");
    row(&[
        "suite".into(),
        "benchmark".into(),
        "baseline s".into(),
        "exterminator s".into(),
        "normalized".into(),
    ]);
    row(&[
        "---".into(),
        "---".into(),
        "---".into(),
        "---".into(),
        "---".into(),
    ]);

    let mut per_suite_ratios: Vec<(&str, Vec<f64>)> = Vec::new();
    for (suite_name, suite) in [
        ("alloc-intensive", alloc_intensive_suite()),
        ("SPECint2000-like", spec_suite()),
    ] {
        let mut ratios = Vec::new();
        for w in &suite {
            let mut samples: Vec<(f64, f64, f64)> = (0..runs)
                .map(|round| paired_ratio(w.as_ref(), &input, round))
                .collect();
            samples.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("no NaN"));
            let (base, ext, ratio) = samples[samples.len() / 2];
            ratios.push(ratio);
            row(&[
                suite_name.into(),
                w.name().into(),
                format!("{base:.4}"),
                format!("{ext:.4}"),
                fmt_ratio(ratio),
            ]);
        }
        per_suite_ratios.push((suite_name, ratios));
    }

    println!();
    let mut all = Vec::new();
    for (suite_name, ratios) in &per_suite_ratios {
        let gm = geomean(ratios);
        println!(
            "geomean {suite_name}: {} (paper: {})",
            fmt_ratio(gm),
            if *suite_name == "alloc-intensive" {
                "1.81x"
            } else {
                "1.07x"
            }
        );
        all.extend_from_slice(ratios);
    }
    println!(
        "geomean overall: {} (paper: 1.25x)",
        fmt_ratio(geomean(&all))
    );
}
