//! §7.2 "Real Faults — Mozilla web browser": the IDN overflow (bug
//! 307259) under cumulative mode, in both of the paper's scenarios.
//!
//! ```text
//! cargo run -p bench --release --bin exp_mozilla
//! ```
//!
//! Paper result: the overflow is correctly identified with no false
//! positives; 23 runs when the attack page is loaded immediately, 34 runs
//! after noisy navigation (the culprit site allocates more correct
//! objects, diluting the evidence).

use exterminator::cumulative::{CumulativeMode, CumulativeModeConfig};
use xt_workloads::{attack_browsing_session, MozillaLike, WorkloadInput};

fn main() {
    println!("# §7.2 Mozilla IDN overflow (cumulative mode, p = 1/2)\n");
    println!("| scenario | isolated | runs | failures | pad | paper runs |");
    println!("| --- | --- | --- | --- | --- | --- |");
    for (label, benign_pages, paper_runs) in
        [("immediate repro", 0usize, 23), ("noisy navigation", 8, 34)]
    {
        let input = WorkloadInput::with_seed(31).payload(attack_browsing_session(benign_pages));
        let mut mode = CumulativeMode::new(CumulativeModeConfig {
            vary_input_seed: true,
            ..CumulativeModeConfig::default()
        });
        let outcome = mode.run_until_isolated(&MozillaLike::new(), &input, None, 200);
        let max_pad = outcome.patches.pads().map(|(_, p)| p).max().unwrap_or(0);
        println!(
            "| {label} | {} | {} | {} | {max_pad} | {paper_runs} |",
            outcome.isolated, outcome.runs, outcome.failures
        );
        // False positives: any flagged site whose patch does nothing for
        // the IDN overflow would be one; the expectation is exactly one
        // flagged overflow site.
        for v in &outcome.flagged {
            println!(
                "  flagged {} ratio {:.1} over {} observations",
                v.site, v.ratio, v.observations
            );
        }
    }
}
