//! Ablation: the canary-fill probability `p` (§5.2).
//!
//! ```text
//! cargo run -p bench --release --bin exp_ablation_p
//! ```
//!
//! The paper: "The choice of p reflects a tradeoff between the precision
//! of the buffer overflow algorithm and dangling pointer isolation ...
//! low values of p increase the number of runs (though not the number of
//! failures) required to isolate overflows, while lower values of p
//! increase the precision of dangling pointer isolation." We sweep `p`
//! and measure cumulative-mode runs-to-isolation for an injected overflow
//! and the per-run failure rate.

use exterminator::cumulative::{CumulativeMode, CumulativeModeConfig};
use exterminator::runner::find_manifesting_fault;
use xt_faults::FaultKind;
use xt_workloads::{EspressoLike, WorkloadInput};

fn main() {
    let input = WorkloadInput::with_seed(6).intensity(3);
    let fault = find_manifesting_fault(
        &EspressoLike::new(),
        &input,
        FaultKind::BufferOverflow {
            delta: 20,
            fill: 0xEE,
        },
        100,
        300,
        30,
        6,
        13,
    )
    .expect("no manifesting overflow");
    println!("# Ablation: canary fill probability p (cumulative mode, injected 20B overflow)\n");
    println!("| p | isolated (of 3 trials) | mean runs | mean failure rate |");
    println!("| --- | --- | --- | --- |");
    for p in [0.125, 0.25, 0.5, 0.75, 1.0] {
        let mut isolated = 0;
        let mut total_runs = 0usize;
        let mut rate_sum = 0.0;
        for trial in 0..3u64 {
            let mut mode = CumulativeMode::new(CumulativeModeConfig {
                fill_probability: p,
                base_seed: 0xAB1A + (p * 1000.0) as u64 + trial * 7919,
                ..CumulativeModeConfig::default()
            });
            let outcome = mode.run_until_isolated(&EspressoLike::new(), &input, Some(fault), 160);
            if outcome.isolated {
                isolated += 1;
                total_runs += outcome.runs;
            }
            rate_sum += outcome.failures as f64 / outcome.runs.max(1) as f64;
        }
        println!(
            "| {p} | {isolated}/3 | {} | {:.2} |",
            total_runs
                .checked_div(isolated)
                .map_or_else(|| "-".into(), |r| r.to_string()),
            rate_sum / 3.0,
        );
    }
    println!("\nexpected shape: larger p -> higher failure (detection) rate and fewer runs");
}
