//! `patch2report` — the paper's §9 future-work tool, implemented: turn a
//! runtime patch file into a human-readable bug report.
//!
//! ```text
//! cargo run -p bench --release --bin patch2report -- <patch-file>
//! ```
//!
//! Without an argument, repairs the built-in Squid case study first and
//! reports on the resulting patches.

use exterminator::iterative::{IterativeConfig, IterativeMode};
use xt_patch::{render_bug_report, PatchTable, SiteNames};
use xt_workloads::{overflow_requests, SquidLike, WorkloadInput};

fn main() {
    let arg = std::env::args().nth(1);
    let (patches, names) = match arg {
        Some(path) => {
            let patches = PatchTable::load(&path).unwrap_or_else(|e| {
                eprintln!("cannot read patch file {path}: {e}");
                std::process::exit(1);
            });
            (patches, SiteNames::new())
        }
        None => {
            eprintln!("(no patch file given — repairing the Squid demo first)");
            let input = WorkloadInput::with_seed(1)
                .payload(overflow_requests(25))
                .intensity(3);
            let mut mode = IterativeMode::new(IterativeConfig::default());
            let outcome = mode.repair(&SquidLike::new(), &input, None);
            let mut names = SiteNames::new();
            for (site, _) in outcome.patches.pads() {
                names.insert(site, "squid-like: store_entry (escaped-URL path)");
            }
            (outcome.patches, names)
        }
    };
    print!("{}", render_bug_report(&patches, &names));
}
