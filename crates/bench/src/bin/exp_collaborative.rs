//! §6.4 collaborative correction: patch sizes and merge behaviour at
//! community scale.
//!
//! ```text
//! cargo run -p bench --release --bin exp_collaborative
//! ```
//!
//! Paper: "the size of the runtime patches that Exterminator generates for
//! injected errors in espresso was just 130K" (17K gzipped) — bounded by
//! the number of allocation sites. Here many simulated users each
//! contribute a patch file; the merged file stays tiny and corrects every
//! contributing user's error.

use exterminator::iterative::{IterativeConfig, IterativeMode};
use exterminator::runner::{execute, find_manifesting_fault, RunConfig};
use xt_faults::{FaultKind, FaultSpec};
use xt_patch::PatchTable;
use xt_workloads::{EspressoLike, WorkloadInput};

fn main() {
    let input = WorkloadInput::with_seed(77).intensity(3);
    println!("# §6.4 collaborative correction\n");

    // A community of users, each repairing whatever fault their seed
    // produces.
    let mut user_patches: Vec<(FaultSpec, PatchTable)> = Vec::new();
    let mut sel = 0u64;
    while user_patches.len() < 8 && sel < 200 {
        sel += 1;
        let kind = if sel.is_multiple_of(3) {
            FaultKind::DanglingFree { lag: 12 }
        } else {
            FaultKind::BufferOverflow {
                delta: 4 + (sel as u32 % 3) * 16,
                fill: 0xE0 + sel as u8 % 16,
            }
        };
        let Some(fault) =
            find_manifesting_fault(&EspressoLike::new(), &input, kind, 100, 450, 8, 4, sel)
        else {
            continue;
        };
        let mut mode = IterativeMode::new(IterativeConfig {
            base_seed: sel ^ 0xC0DE,
            ..IterativeConfig::default()
        });
        let outcome = mode.repair(&EspressoLike::new(), &input, Some(fault));
        if outcome.fixed && !outcome.patches.is_empty() {
            user_patches.push((fault, outcome.patches));
        }
    }
    println!("users contributing patches: {}", user_patches.len());
    for (i, (fault, patches)) in user_patches.iter().enumerate() {
        println!(
            "  user {i}: {:?} at {} -> {} entries, {} bytes",
            fault.kind,
            fault.trigger,
            patches.len(),
            patches.to_text().len()
        );
    }

    let merged = PatchTable::merged(user_patches.iter().map(|(_, p)| p));
    let text = merged.to_text();
    println!(
        "\nmerged: {} entries, {} bytes ({} pads, {} deferrals)",
        merged.len(),
        text.len(),
        merged.pads().count(),
        merged.deferrals().count()
    );
    println!("(paper: espresso patch file 130K raw / 17K gzipped)");

    // The merged file protects every contributing user.
    let mut all_clean = true;
    for (i, (fault, _)) in user_patches.iter().enumerate() {
        let mut failures = 0;
        for seed in 0..3 {
            let mut config = RunConfig::with_seed(0xBEEF + seed + i as u64 * 101);
            config.fault = Some(*fault);
            config.patches = merged.clone();
            config.halt_on_signal = true;
            if execute(&EspressoLike::new(), &input, config).failed() {
                failures += 1;
            }
        }
        println!("merged vs user {i}'s bug: {failures}/3 failing runs");
        all_clean &= failures == 0;
    }
    println!(
        "\n=> merged patches correct every contributed error: {}",
        all_clean
    );
}
