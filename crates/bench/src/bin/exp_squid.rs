//! §7.2 "Real Faults — Squid web cache": the 6-byte overflow.
//!
//! ```text
//! cargo run -p bench --release --bin exp_squid
//! ```
//!
//! Paper result: three runs under iterative mode; Exterminator keeps
//! executing correctly, identifies a single allocation site as the
//! culprit, and "generates a pad of exactly 6 bytes, fixing the error."

use exterminator::iterative::{IterativeConfig, IterativeMode};
use exterminator::runner::{execute, RunConfig};
use xt_workloads::{overflow_requests, SquidLike, Workload as _, WorkloadInput};

fn main() {
    let input = WorkloadInput::with_seed(1)
        .payload(overflow_requests(25))
        .intensity(3);
    println!("# §7.2 Squid buffer overflow (iterative mode)\n");

    // Baseline comparison: the same input corrupts the libc-style heap.
    let mut baseline = xt_baseline::BaselineHeap::with_seed(1);
    let result = SquidLike::new().run(&mut baseline, &input);
    println!(
        "baseline allocator: completed={}, metadata corruption detected={}",
        result.completed(),
        baseline.poisoned()
    );

    let mut mode = IterativeMode::new(IterativeConfig::default());
    let outcome = mode.repair(&SquidLike::new(), &input, None);
    let pads: Vec<(xt_alloc::SiteHash, u32)> = outcome.patches.pads().collect();
    println!("\n| metric | this reproduction | paper |");
    println!("| --- | --- | --- |");
    println!("| repaired | {} | yes |", outcome.fixed);
    println!("| culprit sites | {} | 1 |", pads.len());
    println!(
        "| pad | {} bytes | exactly 6 bytes |",
        pads.first().map_or(0, |&(_, p)| p)
    );
    println!("| heap images used | {} | 3 runs |", outcome.images_used);

    // Verify across fresh randomization.
    let mut failures = 0;
    for seed in 0..5 {
        let mut config = RunConfig::with_seed(100 + seed);
        config.patches = outcome.patches.clone();
        config.halt_on_signal = true;
        if execute(&SquidLike::new(), &input, config).failed() {
            failures += 1;
        }
    }
    println!("| patched failures | {failures}/5 | 0 |");
}
