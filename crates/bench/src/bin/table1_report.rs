//! Table 1 as a live report: how each error class is handled.
//!
//! ```text
//! cargo run -p bench --release --bin table1_report
//! ```

use exterminator::iterative::{IterativeConfig, IterativeMode};
use exterminator::runner::find_manifesting_fault;
use xt_alloc::{Addr, Heap, SiteHash};
use xt_diefast::{DieFastConfig, DieFastHeap};
use xt_faults::FaultKind;
use xt_workloads::{EspressoLike, WorkloadInput};

fn main() {
    println!("# Table 1 — how Exterminator handles each memory error class\n");
    println!("| error | behaviour observed | paper |");
    println!("| --- | --- | --- |");

    // Invalid frees.
    let mut h = DieFastHeap::new(DieFastConfig::with_seed(1));
    let p = h.malloc(32, SiteHash::from_raw(1)).unwrap();
    let invalid = h.free(Addr::new(0xABCD_0000), SiteHash::from_raw(1));
    let interior = h.free(p + 4, SiteHash::from_raw(1));
    println!("| invalid frees | ignored ({invalid:?}, {interior:?}), heap intact | tolerate |");

    // Double frees.
    h.free(p, SiteHash::from_raw(1));
    let double = h.free(p, SiteHash::from_raw(1));
    println!("| double frees | ignored ({double:?}) | tolerate |");

    // Uninitialized reads.
    let q = h.malloc(64, SiteHash::from_raw(1)).unwrap();
    let zeroed = h.arena().read_bytes(q, 64).unwrap().iter().all(|&b| b == 0);
    println!("| uninitialized reads | all allocations zero-filled ({zeroed}) | N/A (zero-fill) |");

    // Buffer overflows: corrected.
    let input = WorkloadInput::with_seed(41).intensity(3);
    let overflow = find_manifesting_fault(
        &EspressoLike::new(),
        &input,
        FaultKind::BufferOverflow {
            delta: 20,
            fill: 0xEE,
        },
        100,
        300,
        20,
        4,
        17,
    );
    let corrected = overflow.is_some_and(|fault| {
        IterativeMode::new(IterativeConfig::default())
            .repair(&EspressoLike::new(), &input, Some(fault))
            .fixed
    });
    println!("| buffer overflows | tolerated* & corrected: {corrected} | tolerate* & correct* |");

    // Dangling pointers: corrected when overwritten (probabilistic).
    let mut dangling_fixed = false;
    for sel in 1..25u64 {
        let Some(fault) = find_manifesting_fault(
            &EspressoLike::new(),
            &input,
            FaultKind::DanglingFree { lag: 12 },
            100,
            400,
            10,
            4,
            sel,
        ) else {
            continue;
        };
        let outcome = IterativeMode::new(IterativeConfig {
            base_seed: sel,
            ..IterativeConfig::default()
        })
        .repair(&EspressoLike::new(), &input, Some(fault));
        if outcome.fixed && outcome.patches.deferrals().count() > 0 {
            dangling_fixed = true;
            break;
        }
    }
    println!(
        "| dangling pointers | tolerated* & corrected*: {dangling_fixed} | tolerate* & correct* |"
    );
    println!("\n(* = probabilistically, as in the paper)");
}
