//! §7.2 "Injected Faults — Buffer overflows": 10 overflows each of sizes
//! 4, 20, and 36 bytes in espresso, repaired in iterative mode.
//!
//! ```text
//! cargo run -p bench --release --bin exp_injected_overflows
//! ```
//!
//! Paper result: "The number of images required to isolate and correct
//! these errors was 3 in every case" — substantially better than
//! Theorem 2's worst case (42% miss probability at k = 3).

use exterminator::iterative::{IterativeConfig, IterativeMode};
use exterminator::runner::find_manifesting_fault;
use xt_faults::FaultKind;
use xt_workloads::{EspressoLike, WorkloadInput};

fn main() {
    let input = WorkloadInput::with_seed(6).intensity(3);
    println!("# §7.2 injected buffer overflows (espresso-like, iterative mode)\n");
    println!("| overflow size | faults repaired | median images | min..max images |");
    println!("| --- | --- | --- | --- |");
    for delta in [4u32, 20, 36] {
        let mut images_used = Vec::new();
        let mut repaired = 0;
        let mut attempted = 0;
        let mut sel = delta as u64 * 1000;
        // Gather 10 manifesting faults per size, like the paper's 10 seeds.
        while attempted < 10 && sel < delta as u64 * 1000 + 400 {
            sel += 1;
            let Some(fault) = find_manifesting_fault(
                &EspressoLike::new(),
                &input,
                FaultKind::BufferOverflow { delta, fill: 0xEE },
                100,
                450,
                6,
                4,
                sel,
            ) else {
                continue;
            };
            attempted += 1;
            let mut mode = IterativeMode::new(IterativeConfig {
                base_seed: sel ^ 0xABCD,
                ..IterativeConfig::default()
            });
            let outcome = mode.repair(&EspressoLike::new(), &input, Some(fault));
            if outcome.fixed && !outcome.rounds.is_empty() {
                repaired += 1;
                images_used.push(outcome.images_used);
            }
        }
        images_used.sort_unstable();
        let median = images_used.get(images_used.len() / 2).copied().unwrap_or(0);
        println!(
            "| {delta} bytes | {repaired}/{attempted} | {median} | {}..{} |",
            images_used.first().copied().unwrap_or(0),
            images_used.last().copied().unwrap_or(0),
        );
    }
    println!("\npaper: 3 images in every case (30/30 repaired)");
}
